//! Saving and loading fitted HAQJSK models.
//!
//! Fitting a HAQJSK model means learning the prototype hierarchy over a whole
//! dataset — the expensive, dataset-dependent part of the pipeline. This
//! module serialises a fitted model (configuration, variant, layer count and
//! every prototype vector) to a line-oriented text format and restores it, so
//! a model can be fitted once and reused for out-of-sample kernel evaluation
//! without recomputing the κ-means hierarchy.
//!
//! Format (one declaration per line):
//!
//! ```text
//! haqjsk-model v1
//! variant <A|D>
//! config <H> <M> <shrink> <min_protos> <layer_cap> <kmeans_iters> <seed> <mu>
//! max_layers <K>
//! layer <k>
//! level <h> <num_prototypes>
//! proto <v_1> <v_2> ... <v_k>
//! ...
//! end
//! ```

use crate::config::{HaqjskConfig, HaqjskVariant};
use crate::hierarchy::{LayerHierarchy, PrototypeHierarchy};
use crate::model::HaqjskModel;
use std::fmt::Write as _;

/// Errors produced while parsing a serialised model.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistenceError(pub String);

impl std::fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error: {}", self.0)
    }
}

impl std::error::Error for PersistenceError {}

/// Serialises a fitted model to the text format.
pub fn model_to_string(model: &HaqjskModel) -> String {
    let mut out = String::new();
    let config = model.config();
    writeln!(out, "haqjsk-model v1").expect("writing to String cannot fail");
    writeln!(
        out,
        "variant {}",
        match model.variant() {
            HaqjskVariant::AlignedAdjacency => "A",
            HaqjskVariant::AlignedDensity => "D",
        }
    )
    .expect("writing to String cannot fail");
    writeln!(
        out,
        "config {} {} {} {} {} {} {} {}",
        config.hierarchy_levels,
        config.num_prototypes,
        config.level_shrink,
        config.min_prototypes,
        config.layer_cap,
        config.kmeans_max_iterations,
        config.seed,
        config.mu
    )
    .expect("writing to String cannot fail");
    writeln!(out, "max_layers {}", model.max_layers()).expect("writing to String cannot fail");
    let hierarchy = model.hierarchy();
    for k in 1..=hierarchy.max_layers() {
        writeln!(out, "layer {k}").expect("writing to String cannot fail");
        let layer = hierarchy.layer(k);
        for h in 1..=layer.num_levels() {
            let prototypes = layer.prototypes(h);
            writeln!(out, "level {h} {}", prototypes.len()).expect("writing to String cannot fail");
            for proto in prototypes {
                let joined: Vec<String> = proto.iter().map(|x| format!("{x:.17e}")).collect();
                writeln!(out, "proto {}", joined.join(" ")).expect("writing to String cannot fail");
            }
        }
    }
    out.push_str("end\n");
    out
}

/// Content digest of a serialised model (FNV-1a over the text bytes, 32
/// hex digits) — the id distributed workers dedup model artifacts on, in
/// the same shape as the dataset ids of `haqjsk-dist`.
pub fn model_artifact_id(text: &str) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut state = OFFSET;
    for byte in text.as_bytes() {
        state ^= *byte as u128;
        state = state.wrapping_mul(PRIME);
    }
    format!("{state:032x}")
}

/// Restores a fitted model from the text format.
pub fn model_from_string(text: &str) -> Result<HaqjskModel, PersistenceError> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let header = lines
        .next()
        .ok_or_else(|| PersistenceError("empty input".to_string()))?;
    if header != "haqjsk-model v1" {
        return Err(PersistenceError(format!("unexpected header '{header}'")));
    }

    let mut variant: Option<HaqjskVariant> = None;
    let mut config: Option<HaqjskConfig> = None;
    let mut max_layers: Option<usize> = None;
    let mut layers: Vec<LayerHierarchy> = Vec::new();
    let mut current_layer: Option<LayerHierarchy> = None;

    for line in lines {
        if line == "end" {
            break;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or_default();
        match keyword {
            "variant" => {
                variant = Some(match parts.next() {
                    Some("A") => HaqjskVariant::AlignedAdjacency,
                    Some("D") => HaqjskVariant::AlignedDensity,
                    other => {
                        return Err(PersistenceError(format!("unknown variant {other:?}")));
                    }
                });
            }
            "config" => {
                let values: Vec<&str> = parts.collect();
                if values.len() != 8 {
                    return Err(PersistenceError("config line needs 8 fields".to_string()));
                }
                let parse_usize = |s: &str| -> Result<usize, PersistenceError> {
                    s.parse()
                        .map_err(|e| PersistenceError(format!("bad integer '{s}': {e}")))
                };
                let parse_f64 = |s: &str| -> Result<f64, PersistenceError> {
                    s.parse()
                        .map_err(|e| PersistenceError(format!("bad float '{s}': {e}")))
                };
                config = Some(HaqjskConfig {
                    hierarchy_levels: parse_usize(values[0])?,
                    num_prototypes: parse_usize(values[1])?,
                    level_shrink: parse_f64(values[2])?,
                    min_prototypes: parse_usize(values[3])?,
                    layer_cap: parse_usize(values[4])?,
                    kmeans_max_iterations: parse_usize(values[5])?,
                    seed: values[6]
                        .parse()
                        .map_err(|e| PersistenceError(format!("bad seed: {e}")))?,
                    mu: parse_f64(values[7])?,
                    max_layers: None,
                });
            }
            "max_layers" => {
                max_layers = Some(
                    parts
                        .next()
                        .ok_or_else(|| PersistenceError("max_layers needs a value".to_string()))?
                        .parse()
                        .map_err(|e| PersistenceError(format!("bad max_layers: {e}")))?,
                );
            }
            "layer" => {
                if let Some(layer) = current_layer.take() {
                    layers.push(layer);
                }
                let k: usize = parts
                    .next()
                    .ok_or_else(|| PersistenceError("layer needs an index".to_string()))?
                    .parse()
                    .map_err(|e| PersistenceError(format!("bad layer index: {e}")))?;
                current_layer = Some(LayerHierarchy {
                    k,
                    levels: Vec::new(),
                });
            }
            "level" => {
                let layer = current_layer
                    .as_mut()
                    .ok_or_else(|| PersistenceError("level before layer".to_string()))?;
                let _h: usize = parts
                    .next()
                    .ok_or_else(|| PersistenceError("level needs an index".to_string()))?
                    .parse()
                    .map_err(|e| PersistenceError(format!("bad level index: {e}")))?;
                let expected_protos: usize = parts
                    .next()
                    .ok_or_else(|| PersistenceError("level needs a prototype count".to_string()))?
                    .parse()
                    .map_err(|e| PersistenceError(format!("bad prototype count: {e}")))?;
                layer.levels.push(Vec::with_capacity(expected_protos));
            }
            "proto" => {
                let layer = current_layer
                    .as_mut()
                    .ok_or_else(|| PersistenceError("proto before layer".to_string()))?;
                let level = layer
                    .levels
                    .last_mut()
                    .ok_or_else(|| PersistenceError("proto before level".to_string()))?;
                let values: Result<Vec<f64>, _> = parts.map(str::parse).collect();
                let values =
                    values.map_err(|e| PersistenceError(format!("bad prototype value: {e}")))?;
                level.push(values);
            }
            other => {
                return Err(PersistenceError(format!("unrecognised keyword '{other}'")));
            }
        }
    }
    if let Some(layer) = current_layer.take() {
        layers.push(layer);
    }

    let variant = variant.ok_or_else(|| PersistenceError("missing variant".to_string()))?;
    let config = config.ok_or_else(|| PersistenceError("missing config".to_string()))?;
    let max_layers =
        max_layers.ok_or_else(|| PersistenceError("missing max_layers".to_string()))?;
    if layers.is_empty() {
        return Err(PersistenceError(
            "model has no prototype layers".to_string(),
        ));
    }
    let hierarchy = PrototypeHierarchy::from_layers(layers);
    Ok(HaqjskModel::from_parts(
        config, variant, max_layers, hierarchy,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{barabasi_albert, cycle_graph, star_graph};

    fn fitted_model() -> (Vec<haqjsk_graph::Graph>, HaqjskModel) {
        let graphs = vec![
            cycle_graph(7),
            star_graph(7),
            barabasi_albert(8, 2, 1),
            cycle_graph(9),
            star_graph(6),
        ];
        let model = HaqjskModel::fit(
            &graphs,
            HaqjskConfig {
                hierarchy_levels: 2,
                num_prototypes: 6,
                layer_cap: 3,
                ..HaqjskConfig::small()
            },
            HaqjskVariant::AlignedDensity,
        )
        .unwrap();
        (graphs, model)
    }

    #[test]
    fn roundtrip_preserves_kernel_values() {
        let (graphs, model) = fitted_model();
        let text = model_to_string(&model);
        assert!(text.starts_with("haqjsk-model v1"));
        let restored = model_from_string(&text).unwrap();
        assert_eq!(restored.variant(), model.variant());
        assert_eq!(restored.max_layers(), model.max_layers());
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                let a = model.kernel_between(&graphs[i], &graphs[j]).unwrap();
                let b = restored.kernel_between(&graphs[i], &graphs[j]).unwrap();
                assert!((a - b).abs() < 1e-10, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_the_hierarchy_exactly() {
        let (_, model) = fitted_model();
        let restored = model_from_string(&model_to_string(&model)).unwrap();
        let h1 = model.hierarchy();
        let h2 = restored.hierarchy();
        assert_eq!(h1.max_layers(), h2.max_layers());
        assert_eq!(h1.num_levels(), h2.num_levels());
        for k in 1..=h1.max_layers() {
            for h in 1..=h1.num_levels() {
                assert_eq!(h1.layer(k).prototypes(h), h2.layer(k).prototypes(h));
            }
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(model_from_string("").is_err());
        assert!(model_from_string("not a model\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nvariant X\nend\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nconfig 1 2 3\nend\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nproto 1.0\nend\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nlevel 1 2\nend\n").is_err());
        assert!(model_from_string(
            "haqjsk-model v1\nvariant A\nconfig 2 6 0.5 2 3 25 42 1\nmax_layers 3\nend\n"
        )
        .is_err()); // no layers
        assert!(model_from_string("haqjsk-model v1\nbogus line\nend\n").is_err());
    }

    #[test]
    fn serialised_text_is_line_oriented_and_terminated() {
        let (_, model) = fitted_model();
        let text = model_to_string(&model);
        assert!(text.ends_with("end\n"));
        assert!(text.contains("variant D"));
        assert!(text.contains("max_layers"));
        assert!(text.lines().filter(|l| l.starts_with("layer ")).count() >= 1);
    }
}
