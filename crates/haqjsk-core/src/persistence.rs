//! Saving and loading fitted HAQJSK models.
//!
//! Fitting a HAQJSK model means learning the prototype hierarchy over a whole
//! dataset — the expensive, dataset-dependent part of the pipeline. This
//! module serialises a fitted model (configuration, variant, layer count and
//! every prototype vector) to a line-oriented text format and restores it, so
//! a model can be fitted once and reused for out-of-sample kernel evaluation
//! without recomputing the κ-means hierarchy.
//!
//! Format (one declaration per line):
//!
//! ```text
//! haqjsk-model v1
//! variant <A|D>
//! config <H> <M> <shrink> <min_protos> <layer_cap> <kmeans_iters> <seed> <mu>
//! max_layers <K>
//! layer <k>
//! level <h> <num_prototypes>
//! proto <v_1> <v_2> ... <v_k>
//! ...
//! end
//! checksum <fnv128-hex>        (optional integrity footer)
//! ```
//!
//! The `checksum` footer is the FNV-1a 128-bit digest
//! ([`model_artifact_id`]) of everything up to and including the `end`
//! line. [`persisted_model_text`] emits it, [`model_from_string`] verifies
//! it when present and hard-errors on a mismatch; footer-less v1 text (the
//! pre-footer format, and [`model_to_string`]'s output, whose digest *is*
//! the distributed artifact id and therefore must not change) still loads.
//!
//! ## Crash-safe files
//!
//! [`save_model_file`] writes the footered text to `<path>.tmp`, fsyncs
//! it, and atomically renames it over `<path>` (fsyncing the directory,
//! best-effort), so a crash at any instant leaves either the previous
//! complete model or the new complete model at `<path>` — never a torn
//! file. [`load_model_file`] reads and checksum-verifies a model, and when
//! `<path>` is missing but a stray `<path>.tmp` exists, says so explicitly
//! (an interrupted save never committed).

use crate::config::{HaqjskConfig, HaqjskVariant};
use crate::hierarchy::{LayerHierarchy, PrototypeHierarchy};
use crate::model::HaqjskModel;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Errors produced while parsing a serialised model.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistenceError(pub String);

impl std::fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error: {}", self.0)
    }
}

impl std::error::Error for PersistenceError {}

/// Serialises a fitted model to the text format.
pub fn model_to_string(model: &HaqjskModel) -> String {
    let mut out = String::new();
    let config = model.config();
    writeln!(out, "haqjsk-model v1").expect("writing to String cannot fail");
    writeln!(
        out,
        "variant {}",
        match model.variant() {
            HaqjskVariant::AlignedAdjacency => "A",
            HaqjskVariant::AlignedDensity => "D",
        }
    )
    .expect("writing to String cannot fail");
    writeln!(
        out,
        "config {} {} {} {} {} {} {} {}",
        config.hierarchy_levels,
        config.num_prototypes,
        config.level_shrink,
        config.min_prototypes,
        config.layer_cap,
        config.kmeans_max_iterations,
        config.seed,
        config.mu
    )
    .expect("writing to String cannot fail");
    writeln!(out, "max_layers {}", model.max_layers()).expect("writing to String cannot fail");
    let hierarchy = model.hierarchy();
    for k in 1..=hierarchy.max_layers() {
        writeln!(out, "layer {k}").expect("writing to String cannot fail");
        let layer = hierarchy.layer(k);
        for h in 1..=layer.num_levels() {
            let prototypes = layer.prototypes(h);
            writeln!(out, "level {h} {}", prototypes.len()).expect("writing to String cannot fail");
            for proto in prototypes {
                let joined: Vec<String> = proto.iter().map(|x| format!("{x:.17e}")).collect();
                writeln!(out, "proto {}", joined.join(" ")).expect("writing to String cannot fail");
            }
        }
    }
    out.push_str("end\n");
    out
}

/// Content digest of a serialised model (FNV-1a over the text bytes, 32
/// hex digits) — the id distributed workers dedup model artifacts on, in
/// the same shape as the dataset ids of `haqjsk-dist`.
pub fn model_artifact_id(text: &str) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut state = OFFSET;
    for byte in text.as_bytes() {
        state ^= *byte as u128;
        state = state.wrapping_mul(PRIME);
    }
    format!("{state:032x}")
}

/// Serialises a fitted model with the integrity footer appended — the
/// form [`save_model_file`] writes to disk. Kept separate from
/// [`model_to_string`] because the latter's exact bytes are the
/// distributed model-artifact content address.
pub fn persisted_model_text(model: &HaqjskModel) -> String {
    let mut text = model_to_string(model);
    let digest = model_artifact_id(&text);
    writeln!(text, "checksum {digest}").expect("writing to String cannot fail");
    text
}

/// Splits serialised model text into the body (through the `end` line,
/// inclusive) and the optional `checksum` footer value. Errors on trailing
/// garbage after `end` that is not exactly one well-formed footer line.
fn split_footer(text: &str) -> Result<(&str, Option<&str>), PersistenceError> {
    let mut offset = 0usize;
    let mut body_end = None;
    for chunk in text.split_inclusive('\n') {
        offset += chunk.len();
        if chunk.trim() == "end" {
            body_end = Some(offset);
            break;
        }
    }
    let Some(body_end) = body_end else {
        // No `end` line: let the body parser produce its own error (or
        // succeed, for hand-written fixtures) — there is no footer.
        return Ok((text, None));
    };
    let (body, trailer) = text.split_at(body_end);
    let mut footer = None;
    for line in trailer.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), footer) {
            (Some("checksum"), Some(digest), None, None) => footer = Some(digest),
            (Some("checksum"), _, _, Some(_)) => {
                return Err(PersistenceError("duplicate checksum footer".to_string()));
            }
            _ => {
                return Err(PersistenceError(format!(
                    "unexpected content after 'end': '{line}'"
                )));
            }
        }
    }
    Ok((body, footer))
}

/// Restores a fitted model from the text format, verifying the `checksum`
/// footer when one is present (footer-less v1 text is accepted for
/// backward compatibility; a mismatched checksum is a hard error).
pub fn model_from_string(text: &str) -> Result<HaqjskModel, PersistenceError> {
    let (body, footer) = split_footer(text)?;
    if let Some(expected) = footer {
        let actual = model_artifact_id(body);
        if actual != expected {
            return Err(PersistenceError(format!(
                "checksum mismatch: footer says {expected}, content hashes to {actual} \
                 (the file is corrupt or was modified)"
            )));
        }
    }
    let text = body;
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let header = lines
        .next()
        .ok_or_else(|| PersistenceError("empty input".to_string()))?;
    if header != "haqjsk-model v1" {
        return Err(PersistenceError(format!("unexpected header '{header}'")));
    }

    let mut variant: Option<HaqjskVariant> = None;
    let mut config: Option<HaqjskConfig> = None;
    let mut max_layers: Option<usize> = None;
    let mut layers: Vec<LayerHierarchy> = Vec::new();
    let mut current_layer: Option<LayerHierarchy> = None;

    for line in lines {
        if line == "end" {
            break;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().unwrap_or_default();
        match keyword {
            "variant" => {
                variant = Some(match parts.next() {
                    Some("A") => HaqjskVariant::AlignedAdjacency,
                    Some("D") => HaqjskVariant::AlignedDensity,
                    other => {
                        return Err(PersistenceError(format!("unknown variant {other:?}")));
                    }
                });
            }
            "config" => {
                let values: Vec<&str> = parts.collect();
                if values.len() != 8 {
                    return Err(PersistenceError("config line needs 8 fields".to_string()));
                }
                let parse_usize = |s: &str| -> Result<usize, PersistenceError> {
                    s.parse()
                        .map_err(|e| PersistenceError(format!("bad integer '{s}': {e}")))
                };
                let parse_f64 = |s: &str| -> Result<f64, PersistenceError> {
                    s.parse()
                        .map_err(|e| PersistenceError(format!("bad float '{s}': {e}")))
                };
                config = Some(HaqjskConfig {
                    hierarchy_levels: parse_usize(values[0])?,
                    num_prototypes: parse_usize(values[1])?,
                    level_shrink: parse_f64(values[2])?,
                    min_prototypes: parse_usize(values[3])?,
                    layer_cap: parse_usize(values[4])?,
                    kmeans_max_iterations: parse_usize(values[5])?,
                    seed: values[6]
                        .parse()
                        .map_err(|e| PersistenceError(format!("bad seed: {e}")))?,
                    mu: parse_f64(values[7])?,
                    max_layers: None,
                });
            }
            "max_layers" => {
                max_layers = Some(
                    parts
                        .next()
                        .ok_or_else(|| PersistenceError("max_layers needs a value".to_string()))?
                        .parse()
                        .map_err(|e| PersistenceError(format!("bad max_layers: {e}")))?,
                );
            }
            "layer" => {
                if let Some(layer) = current_layer.take() {
                    layers.push(layer);
                }
                let k: usize = parts
                    .next()
                    .ok_or_else(|| PersistenceError("layer needs an index".to_string()))?
                    .parse()
                    .map_err(|e| PersistenceError(format!("bad layer index: {e}")))?;
                current_layer = Some(LayerHierarchy {
                    k,
                    levels: Vec::new(),
                });
            }
            "level" => {
                let layer = current_layer
                    .as_mut()
                    .ok_or_else(|| PersistenceError("level before layer".to_string()))?;
                let _h: usize = parts
                    .next()
                    .ok_or_else(|| PersistenceError("level needs an index".to_string()))?
                    .parse()
                    .map_err(|e| PersistenceError(format!("bad level index: {e}")))?;
                let expected_protos: usize = parts
                    .next()
                    .ok_or_else(|| PersistenceError("level needs a prototype count".to_string()))?
                    .parse()
                    .map_err(|e| PersistenceError(format!("bad prototype count: {e}")))?;
                layer.levels.push(Vec::with_capacity(expected_protos));
            }
            "proto" => {
                let layer = current_layer
                    .as_mut()
                    .ok_or_else(|| PersistenceError("proto before layer".to_string()))?;
                let level = layer
                    .levels
                    .last_mut()
                    .ok_or_else(|| PersistenceError("proto before level".to_string()))?;
                let values: Result<Vec<f64>, _> = parts.map(str::parse).collect();
                let values =
                    values.map_err(|e| PersistenceError(format!("bad prototype value: {e}")))?;
                level.push(values);
            }
            other => {
                return Err(PersistenceError(format!("unrecognised keyword '{other}'")));
            }
        }
    }
    if let Some(layer) = current_layer.take() {
        layers.push(layer);
    }

    let variant = variant.ok_or_else(|| PersistenceError("missing variant".to_string()))?;
    let config = config.ok_or_else(|| PersistenceError("missing config".to_string()))?;
    let max_layers =
        max_layers.ok_or_else(|| PersistenceError("missing max_layers".to_string()))?;
    if layers.is_empty() {
        return Err(PersistenceError(
            "model has no prototype layers".to_string(),
        ));
    }
    let hierarchy = PrototypeHierarchy::from_layers(layers);
    Ok(HaqjskModel::from_parts(
        config, variant, max_layers, hierarchy,
    ))
}

/// The sibling temporary path an in-progress [`save_model_file`] writes
/// to before committing: `<path>.tmp` (extension appended, not replaced).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Atomically persists a fitted model to `path` with an integrity footer:
/// writes [`persisted_model_text`] to `<path>.tmp`, fsyncs it, renames it
/// over `path`, and fsyncs the parent directory (best-effort). A crash at
/// any point leaves `path` either untouched (previous model intact) or
/// fully written — never torn.
pub fn save_model_file(model: &HaqjskModel, path: &Path) -> std::io::Result<()> {
    let text = persisted_model_text(model);
    let tmp = tmp_sibling(path);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        // The contents must be durable before the rename commits them, or
        // a crash could leave a committed name pointing at torn bytes.
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Durability of the rename itself; failure here only weakens the
        // crash window, it does not corrupt anything.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Loads and checksum-verifies a model saved by [`save_model_file`]
/// (footer-less v1 files also load). When `path` is missing but a stray
/// `<path>.tmp` exists, the error says a save was interrupted mid-write —
/// the temporary was never committed and the previous model (if any) was
/// the last durable state.
pub fn load_model_file(path: &Path) -> Result<HaqjskModel, PersistenceError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            let tmp = tmp_sibling(path);
            if tmp.exists() {
                return Err(PersistenceError(format!(
                    "{} not found, but {} exists: a save was interrupted mid-write and never \
                     committed; the temporary file is not trusted (delete it and re-save)",
                    path.display(),
                    tmp.display()
                )));
            }
            return Err(PersistenceError(format!("{} not found", path.display())));
        }
        Err(e) => {
            return Err(PersistenceError(format!(
                "cannot read {}: {e}",
                path.display()
            )));
        }
    };
    model_from_string(&text)
        .map_err(|PersistenceError(msg)| PersistenceError(format!("{}: {msg}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{barabasi_albert, cycle_graph, star_graph};

    fn fitted_model() -> (Vec<haqjsk_graph::Graph>, HaqjskModel) {
        let graphs = vec![
            cycle_graph(7),
            star_graph(7),
            barabasi_albert(8, 2, 1),
            cycle_graph(9),
            star_graph(6),
        ];
        let model = HaqjskModel::fit(
            &graphs,
            HaqjskConfig {
                hierarchy_levels: 2,
                num_prototypes: 6,
                layer_cap: 3,
                ..HaqjskConfig::small()
            },
            HaqjskVariant::AlignedDensity,
        )
        .unwrap();
        (graphs, model)
    }

    #[test]
    fn roundtrip_preserves_kernel_values() {
        let (graphs, model) = fitted_model();
        let text = model_to_string(&model);
        assert!(text.starts_with("haqjsk-model v1"));
        let restored = model_from_string(&text).unwrap();
        assert_eq!(restored.variant(), model.variant());
        assert_eq!(restored.max_layers(), model.max_layers());
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                let a = model.kernel_between(&graphs[i], &graphs[j]).unwrap();
                let b = restored.kernel_between(&graphs[i], &graphs[j]).unwrap();
                assert!((a - b).abs() < 1e-10, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn roundtrip_preserves_the_hierarchy_exactly() {
        let (_, model) = fitted_model();
        let restored = model_from_string(&model_to_string(&model)).unwrap();
        let h1 = model.hierarchy();
        let h2 = restored.hierarchy();
        assert_eq!(h1.max_layers(), h2.max_layers());
        assert_eq!(h1.num_levels(), h2.num_levels());
        for k in 1..=h1.max_layers() {
            for h in 1..=h1.num_levels() {
                assert_eq!(h1.layer(k).prototypes(h), h2.layer(k).prototypes(h));
            }
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(model_from_string("").is_err());
        assert!(model_from_string("not a model\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nvariant X\nend\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nconfig 1 2 3\nend\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nproto 1.0\nend\n").is_err());
        assert!(model_from_string("haqjsk-model v1\nlevel 1 2\nend\n").is_err());
        assert!(model_from_string(
            "haqjsk-model v1\nvariant A\nconfig 2 6 0.5 2 3 25 42 1\nmax_layers 3\nend\n"
        )
        .is_err()); // no layers
        assert!(model_from_string("haqjsk-model v1\nbogus line\nend\n").is_err());
    }

    #[test]
    fn serialised_text_is_line_oriented_and_terminated() {
        let (_, model) = fitted_model();
        let text = model_to_string(&model);
        assert!(text.ends_with("end\n"));
        assert!(text.contains("variant D"));
        assert!(text.contains("max_layers"));
        assert!(text.lines().filter(|l| l.starts_with("layer ")).count() >= 1);
    }

    /// A unique scratch directory per test (no tempfile crate available).
    fn scratch_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("haqjsk-persistence-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn footered_text_roundtrips_and_verifies() {
        let (_, model) = fitted_model();
        let text = persisted_model_text(&model);
        assert!(text.contains("\nchecksum "));
        let restored = model_from_string(&text).unwrap();
        assert_eq!(
            restored.hierarchy().max_layers(),
            model.hierarchy().max_layers()
        );
        // The footer digest is computed over exactly the artifact-id body,
        // so the on-disk form stays content-addressable.
        let body = model_to_string(&model);
        assert!(text.starts_with(&body));
        assert!(text.ends_with(&format!("checksum {}\n", model_artifact_id(&body))));
    }

    #[test]
    fn footer_less_v1_text_still_loads() {
        let (_, model) = fitted_model();
        let text = model_to_string(&model); // no footer — the pre-footer format
        assert!(!text.contains("checksum"));
        assert!(model_from_string(&text).is_ok());
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let (_, model) = fitted_model();
        let text = persisted_model_text(&model);
        // Flip one digit inside a prototype value — the parse would still
        // succeed, only the checksum catches it.
        let idx = text.find("proto ").unwrap() + "proto ".len() + 3;
        let mut bytes = text.into_bytes();
        bytes[idx] = if bytes[idx] == b'5' { b'6' } else { b'5' };
        let tampered = String::from_utf8(bytes).unwrap();
        let err = model_from_string(&tampered).unwrap_err();
        assert!(err.0.contains("checksum mismatch"), "got: {}", err.0);
    }

    #[test]
    fn truncated_text_is_rejected() {
        let (_, model) = fitted_model();
        let text = persisted_model_text(&model);
        // Truncation before `end` loses the footer too; the parse then
        // fails structurally (incomplete, but keywords are well-formed
        // only by luck) — cutting mid-line guarantees a hard error.
        let cut = text.len() / 2;
        let truncated = &text[..cut];
        assert!(model_from_string(truncated).is_err());
    }

    #[test]
    fn trailing_garbage_after_end_is_rejected() {
        let (_, model) = fitted_model();
        let mut text = model_to_string(&model);
        text.push_str("variant A\n");
        let err = model_from_string(&text).unwrap_err();
        assert!(err.0.contains("after 'end'"), "got: {}", err.0);
        let mut twice = persisted_model_text(&model);
        twice.push_str("checksum 00\n");
        let err = model_from_string(&twice).unwrap_err();
        assert!(err.0.contains("duplicate"), "got: {}", err.0);
    }

    #[test]
    fn save_load_file_roundtrip_is_byte_identical() {
        let dir = scratch_dir("roundtrip");
        let path = dir.join("model.haqjsk");
        let (_, model) = fitted_model();
        save_model_file(&model, &path).unwrap();
        assert!(!tmp_sibling(&path).exists(), "tmp was renamed away");
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, persisted_model_text(&model));
        let restored = load_model_file(&path).unwrap();
        assert_eq!(model_to_string(&restored), model_to_string(&model));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_previous_model_atomically() {
        let dir = scratch_dir("replace");
        let path = dir.join("model.haqjsk");
        let (_, model) = fitted_model();
        save_model_file(&model, &path).unwrap();
        // Second save over the same path: rename replaces, never appends.
        save_model_file(&model, &path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            persisted_model_text(&model)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_file_is_rejected_on_load() {
        let dir = scratch_dir("corrupt");
        let path = dir.join("model.haqjsk");
        let (_, model) = fitted_model();
        save_model_file(&model, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_model_file(&path).unwrap_err();
        assert!(
            err.0.contains("checksum mismatch") || err.0.contains("parse"),
            "got: {}",
            err.0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_from_a_crashed_save_is_reported() {
        let dir = scratch_dir("stray-tmp");
        let path = dir.join("model.haqjsk");
        // Simulate a crash between tmp-write and rename: only the tmp
        // exists (torn, at that).
        std::fs::write(tmp_sibling(&path), b"haqjsk-model v1\nvariant A\nconf").unwrap();
        let err = load_model_file(&path).unwrap_err();
        assert!(err.0.contains("interrupted mid-write"), "got: {}", err.0);

        // With a previous committed model present, the stray tmp is
        // irrelevant: the committed file loads.
        let (_, model) = fitted_model();
        save_model_file(&model, &path).unwrap();
        std::fs::write(tmp_sibling(&path), b"torn bytes from a later crash").unwrap();
        assert!(load_model_file(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
