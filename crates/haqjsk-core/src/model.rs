//! The fitted HAQJSK model and the two kernels (Definitions 3.1 and 3.2).
//!
//! [`HaqjskModel::fit`] learns the prototype hierarchy from a dataset;
//! [`HaqjskModel::transform`] maps any graph (from the training set or not)
//! into its hierarchical transitive aligned structures; and
//! [`HaqjskModel::kernel`] / [`HaqjskModel::gram_matrix`] evaluate
//!
//! ```text
//! K^A_HAQJS(G_p, G_q) = Σ_{h=1..H} exp(-μ · D_QJS(δ(Ā^h_p), δ(Ā^h_q)))      (Eq. 26)
//! K^D_HAQJS(G_p, G_q) = Σ_{h=1..H} exp(-μ · D_QJS(ρ̄^h_p, ρ̄^h_q))           (Eq. 29)
//! ```
//!
//! where `δ(·)` is the CTQW density matrix of an (aligned, weighted)
//! adjacency matrix. Because every graph is compared through the *same*
//! fixed-size, transitively aligned structures, the kernels are permutation
//! invariant and positive definite (the paper's Lemma); the property-based
//! tests and the `psd_check` benchmark verify this empirically.

use crate::aligned::{aligned_adjacency_family, aligned_density_family};
use crate::config::{HaqjskConfig, HaqjskVariant};
use crate::correspondence::GraphCorrespondences;
use crate::db_representation::DbRepresentations;
use crate::hierarchy::PrototypeHierarchy;
use haqjsk_engine::{
    graph_key, BackendKind, CacheWeight, Engine, FeatureCache, RemoteArtifact, RemoteGram,
};
use haqjsk_graph::Graph;
use haqjsk_kernels::kernel::{gram_from_tiles_spec, time_kernel_gram};
use haqjsk_kernels::{GraphKernel, KernelMatrix};
use haqjsk_linalg::LinalgError;
use haqjsk_quantum::ctqw::ctqw_density_from_adjacency;
use haqjsk_quantum::{qjsd, DensityMatrix};
use std::sync::Arc;

/// The hierarchical aligned representation of a single graph, ready for
/// kernel evaluation against any other graph aligned to the same prototypes.
#[derive(Debug, Clone)]
pub struct AlignedGraph {
    /// Per hierarchy level `h`: the CTQW density matrix `δ(Ā^h)` of the
    /// aligned adjacency matrix (the ingredient of HAQJSK(A)).
    pub adjacency_densities: Vec<DensityMatrix>,
    /// Per hierarchy level `h`: the aligned density matrix `ρ̄^h` (the
    /// ingredient of HAQJSK(D)).
    pub aligned_densities: Vec<DensityMatrix>,
}

impl AlignedGraph {
    /// The per-level density matrices used by the requested kernel variant.
    pub fn densities(&self, variant: HaqjskVariant) -> &[DensityMatrix] {
        match variant {
            HaqjskVariant::AlignedAdjacency => &self.adjacency_densities,
            HaqjskVariant::AlignedDensity => &self.aligned_densities,
        }
    }
}

/// Aligned representations live in the serving layer's budgeted feature
/// cache; their weight is the two per-level density families.
impl CacheWeight for AlignedGraph {
    fn weight(&self) -> usize {
        let densities = self
            .adjacency_densities
            .iter()
            .chain(self.aligned_densities.iter())
            .map(CacheWeight::weight)
            .sum::<usize>();
        std::mem::size_of::<AlignedGraph>() + densities
    }
}

/// A HAQJSK model fitted to a dataset: the depth-based representation layer
/// count `K`, the prototype hierarchy, and the configuration.
#[derive(Debug, Clone)]
pub struct HaqjskModel {
    config: HaqjskConfig,
    variant: HaqjskVariant,
    max_layers: usize,
    hierarchy: PrototypeHierarchy,
}

impl HaqjskModel {
    /// Stable remote kernel id for fitted-model Grams: the distributed
    /// backend ships the persisted model (`persistence::model_to_string`)
    /// as a content-addressed artifact under this id, and workers
    /// reconstruct the model with `persistence::model_from_string`.
    pub const REMOTE_KERNEL_ID: &'static str = "haqjsk_model";

    /// Assembles a model from already-learned parts (used when restoring a
    /// persisted model); `fit` is the normal way to obtain one.
    pub fn from_parts(
        config: HaqjskConfig,
        variant: HaqjskVariant,
        max_layers: usize,
        hierarchy: PrototypeHierarchy,
    ) -> Self {
        HaqjskModel {
            config,
            variant,
            max_layers,
            hierarchy,
        }
    }

    /// Fits the model (learns the hierarchical prototypes) on a dataset.
    pub fn fit(
        graphs: &[Graph],
        config: HaqjskConfig,
        variant: HaqjskVariant,
    ) -> Result<Self, LinalgError> {
        config.validate().map_err(LinalgError::InvalidArgument)?;
        if graphs.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "cannot fit a HAQJSK model on an empty dataset".to_string(),
            ));
        }
        let representations = match config.max_layers {
            Some(k) => DbRepresentations::compute(graphs, k),
            None => DbRepresentations::compute_auto(graphs, config.layer_cap),
        };
        let hierarchy = PrototypeHierarchy::build(&representations, &config);
        Ok(HaqjskModel {
            max_layers: representations.max_layers(),
            config,
            variant,
            hierarchy,
        })
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &HaqjskConfig {
        &self.config
    }

    /// The kernel variant this model evaluates.
    pub fn variant(&self) -> HaqjskVariant {
        self.variant
    }

    /// The number of depth-based layers `K` derived at fit time.
    pub fn max_layers(&self) -> usize {
        self.max_layers
    }

    /// The learned prototype hierarchy.
    pub fn hierarchy(&self) -> &PrototypeHierarchy {
        &self.hierarchy
    }

    /// Transforms a single graph into its hierarchical transitive aligned
    /// representation. Works for training graphs and unseen graphs alike —
    /// the prototypes are fixed at fit time.
    pub fn transform(&self, graph: &Graph) -> Result<AlignedGraph, LinalgError> {
        // Depth-based representations of this graph alone, truncated to the
        // layer count the prototypes were built with.
        let single = DbRepresentations::compute(std::slice::from_ref(graph), self.max_layers);
        let correspondences = GraphCorrespondences::compute(&single, 0, &self.hierarchy);

        let adjacency_family = aligned_adjacency_family(graph, &correspondences);
        let adjacency_densities = adjacency_family
            .iter()
            .map(ctqw_density_from_adjacency)
            .collect::<Result<Vec<_>, _>>()?;
        let aligned_densities = aligned_density_family(graph, &correspondences)?;

        Ok(AlignedGraph {
            adjacency_densities,
            aligned_densities,
        })
    }

    /// Transforms a whole dataset, in parallel on the engine's worker pool.
    pub fn transform_all(&self, graphs: &[Graph]) -> Result<Vec<AlignedGraph>, LinalgError> {
        Engine::global()
            .map(graphs.len(), |i| self.transform(&graphs[i]))
            .into_iter()
            .collect()
    }

    /// Transforms a dataset through a [`FeatureCache`], computing each
    /// distinct graph's aligned representation exactly once — across this
    /// call *and* any earlier call that used the same cache.
    ///
    /// The cache key is the structural graph hash, which does not include
    /// the model's prototypes: a cache must therefore only ever be used
    /// with the one model it was created for (the serving layer creates a
    /// fresh cache whenever a model is fitted or loaded).
    pub fn transform_all_cached(
        &self,
        graphs: &[Graph],
        cache: &FeatureCache<AlignedGraph>,
    ) -> Result<Vec<Arc<AlignedGraph>>, LinalgError> {
        use std::collections::HashMap;

        // Deduplicate by structural key first, so a batch containing the
        // same graph several times computes its transform once: only the
        // first occurrence of each key joins the parallel compute phase.
        let keys: Vec<_> = graphs.iter().map(graph_key).collect();
        let mut first_occurrence: HashMap<_, usize> = HashMap::new();
        let distinct: Vec<usize> = (0..graphs.len())
            .filter(|&i| first_occurrence.insert(keys[i], i).is_none())
            .collect();

        // The engine cache guarantees a single stored value per key, but
        // its closure cannot return an error; compute failures are
        // reproduced outside the cache on the (cold) failing graph.
        let attempts: Vec<Option<Arc<AlignedGraph>>> = Engine::global().map(distinct.len(), |d| {
            let i = distinct[d];
            if let Some(hit) = cache.get(keys[i]) {
                return Some(hit);
            }
            match self.transform(&graphs[i]) {
                Ok(aligned) => Some(cache.get_or_compute(keys[i], || aligned)),
                Err(_) => None,
            }
        });

        let mut by_key: HashMap<_, Arc<AlignedGraph>> = HashMap::new();
        for (d, slot) in attempts.into_iter().enumerate() {
            let i = distinct[d];
            match slot {
                Some(aligned) => {
                    by_key.insert(keys[i], aligned);
                }
                // Re-run the failing transform to surface its error.
                None => {
                    by_key.insert(keys[i], self.transform(&graphs[i]).map(Arc::new)?);
                }
            }
        }
        Ok(keys.iter().map(|key| Arc::clone(&by_key[key])).collect())
    }

    /// Kernel value between two already-transformed graphs:
    /// `Σ_h exp(-μ · D_QJS)` over the hierarchy levels (Eq. 26 / Eq. 29).
    pub fn kernel(&self, a: &AlignedGraph, b: &AlignedGraph) -> f64 {
        let da = a.densities(self.variant);
        let db = b.densities(self.variant);
        let levels = da.len().min(db.len());
        let mut total = 0.0;
        for h in 0..levels {
            let divergence =
                qjsd(&da[h], &db[h]).expect("aligned structures share the prototype dimension");
            total += (-self.config.mu * divergence).exp();
        }
        total
    }

    /// Convenience: transform two graphs and evaluate the kernel.
    pub fn kernel_between(&self, a: &Graph, b: &Graph) -> Result<f64, LinalgError> {
        Ok(self.kernel(&self.transform(a)?, &self.transform(b)?))
    }

    /// Gram matrix over a dataset: each graph is transformed once (in
    /// parallel), then all pairs are evaluated on the engine's default
    /// execution backend.
    pub fn gram_matrix(&self, graphs: &[Graph]) -> Result<KernelMatrix, LinalgError> {
        self.gram_matrix_on(graphs, None)
    }

    /// [`HaqjskModel::gram_matrix`] on an explicit execution backend
    /// (`None` = the engine default, which honours `HAQJSK_BACKEND`).
    pub fn gram_matrix_on(
        &self,
        graphs: &[Graph],
        backend: Option<BackendKind>,
    ) -> Result<KernelMatrix, LinalgError> {
        let _timer = time_kernel_gram(GraphKernel::name(self));
        let aligned = self.transform_all(graphs)?;
        Ok(self.gram_over_aligned(graphs, backend, |i, j| {
            self.kernel(&aligned[i], &aligned[j])
        }))
    }

    /// Pairwise Gram assembly over already-transformed features through the
    /// engine's tile seam, attaching a [`RemoteGram`] spec (kernel id
    /// [`HaqjskModel::REMOTE_KERNEL_ID`] plus the persisted model as a
    /// content-addressed artifact) when the effective backend is
    /// distributed — so fitted-model Grams fan out to workers exactly like
    /// the closed-form kernels instead of falling back to local execution.
    /// The artifact is only serialised on the distributed path; local
    /// backends ignore the spec entirely.
    fn gram_over_aligned(
        &self,
        graphs: &[Graph],
        backend: Option<BackendKind>,
        entry: impl Fn(usize, usize) -> f64 + Sync,
    ) -> KernelMatrix {
        let effective = backend.unwrap_or_else(|| Engine::global().backend());
        let payload = (effective == BackendKind::Distributed)
            .then(|| crate::persistence::model_to_string(self));
        let spec = payload.as_deref().map(|text| RemoteGram {
            kernel_id: Self::REMOTE_KERNEL_ID,
            params: Vec::new(),
            graphs,
            artifact: Some(RemoteArtifact {
                id: crate::persistence::model_artifact_id(text),
                payload: text,
            }),
        });
        gram_from_tiles_spec(
            graphs.len(),
            backend,
            |_| {},
            |pairs: &[(usize, usize)], out: &mut [f64]| {
                for (k, &(i, j)) in pairs.iter().enumerate() {
                    out[k] = entry(i, j);
                }
            },
            spec.as_ref(),
        )
    }

    /// Gram matrix over a dataset with the per-graph aligned features
    /// memoised in `cache` (see [`HaqjskModel::transform_all_cached`] for
    /// the cache-ownership rule).
    pub fn gram_matrix_cached(
        &self,
        graphs: &[Graph],
        cache: &FeatureCache<AlignedGraph>,
    ) -> Result<KernelMatrix, LinalgError> {
        self.gram_matrix_cached_on(graphs, cache, None)
    }

    /// [`HaqjskModel::gram_matrix_cached`] on an explicit execution
    /// backend.
    pub fn gram_matrix_cached_on(
        &self,
        graphs: &[Graph],
        cache: &FeatureCache<AlignedGraph>,
        backend: Option<BackendKind>,
    ) -> Result<KernelMatrix, LinalgError> {
        let _timer = time_kernel_gram(GraphKernel::name(self));
        let aligned = self.transform_all_cached(graphs, cache)?;
        Ok(self.gram_over_aligned(graphs, backend, |i, j| {
            self.kernel(&aligned[i], &aligned[j])
        }))
    }

    /// Incrementally extends a Gram matrix with out-of-sample graphs: given
    /// the Gram matrix of `graphs[..base.len()]`, returns the Gram matrix of
    /// all of `graphs` while evaluating only the new rows/columns
    /// (`base.len()` must not exceed `graphs.len()`). The streaming serving
    /// path uses this to append arrivals without recomputing history.
    pub fn gram_matrix_extended(
        &self,
        base: &KernelMatrix,
        graphs: &[Graph],
        cache: &FeatureCache<AlignedGraph>,
    ) -> Result<KernelMatrix, LinalgError> {
        self.gram_matrix_extended_on(base, graphs, cache, None)
    }

    /// [`HaqjskModel::gram_matrix_extended`] on an explicit execution
    /// backend.
    pub fn gram_matrix_extended_on(
        &self,
        base: &KernelMatrix,
        graphs: &[Graph],
        cache: &FeatureCache<AlignedGraph>,
        backend: Option<BackendKind>,
    ) -> Result<KernelMatrix, LinalgError> {
        let m = base.len();
        if m > graphs.len() {
            return Err(LinalgError::InvalidArgument(format!(
                "base Gram matrix covers {m} graphs but only {} were supplied",
                graphs.len()
            )));
        }
        let aligned = self.transform_all_cached(graphs, cache)?;
        let values =
            Engine::global().gram_extend_on(backend, base.matrix(), graphs.len(), |i, j| {
                self.kernel(&aligned[i], &aligned[j])
            });
        KernelMatrix::new(values)
    }

    /// Sliding-window Gram maintenance for streaming deployments: extends
    /// the Gram matrix of `graphs[..base.len()]` to cover all of `graphs`,
    /// then evicts the oldest rows/columns so at most `window` items
    /// remain. Returns the windowed Gram matrix (covering the *last*
    /// `min(graphs.len(), window)` graphs) — new pairs are evaluated once,
    /// evicted history costs no kernel work at all.
    pub fn gram_matrix_windowed(
        &self,
        base: &KernelMatrix,
        graphs: &[Graph],
        window: usize,
        cache: &FeatureCache<AlignedGraph>,
    ) -> Result<KernelMatrix, LinalgError> {
        if window == 0 {
            return Err(LinalgError::InvalidArgument(
                "sliding window must keep at least one graph".to_string(),
            ));
        }
        let extended = self.gram_matrix_extended(base, graphs, cache)?;
        let total = extended.len();
        if total <= window {
            return Ok(extended);
        }
        let values = Engine::global().gram_retain(extended.matrix(), total - window..total);
        KernelMatrix::new(values)
    }

    /// Maximum attainable kernel value (`H`, reached when every per-level
    /// divergence is zero, e.g. for a graph against itself).
    pub fn max_kernel_value(&self) -> f64 {
        self.hierarchy.num_levels() as f64
    }
}

impl GraphKernel for HaqjskModel {
    fn name(&self) -> &'static str {
        match self.variant {
            HaqjskVariant::AlignedAdjacency => "HAQJSK(A)",
            HaqjskVariant::AlignedDensity => "HAQJSK(D)",
        }
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        self.kernel_between(a, b)
            .expect("graphs must be non-empty and transformable")
    }

    fn gram_matrix(&self, graphs: &[Graph]) -> KernelMatrix {
        HaqjskModel::gram_matrix(self, graphs).expect("graphs must be non-empty and transformable")
    }

    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        HaqjskModel::gram_matrix_on(self, graphs, backend)
            .expect("graphs must be non-empty and transformable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, erdos_renyi, path_graph, star_graph};

    fn dataset() -> Vec<Graph> {
        vec![
            path_graph(6),
            cycle_graph(6),
            star_graph(6),
            erdos_renyi(7, 0.4, 1),
            erdos_renyi(8, 0.3, 2),
        ]
    }

    fn small_config() -> HaqjskConfig {
        HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 8,
            layer_cap: 3,
            ..HaqjskConfig::small()
        }
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(HaqjskModel::fit(&[], small_config(), HaqjskVariant::AlignedAdjacency).is_err());
        let bad = HaqjskConfig {
            hierarchy_levels: 0,
            ..small_config()
        };
        assert!(HaqjskModel::fit(&dataset(), bad, HaqjskVariant::AlignedDensity).is_err());
    }

    #[test]
    fn transform_produces_per_level_states() {
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let aligned = model.transform(&graphs[0]).unwrap();
        assert_eq!(
            aligned.adjacency_densities.len(),
            model.hierarchy().num_levels()
        );
        assert_eq!(
            aligned.aligned_densities.len(),
            model.hierarchy().num_levels()
        );
        for rho in aligned
            .adjacency_densities
            .iter()
            .chain(aligned.aligned_densities.iter())
        {
            assert!((rho.matrix().trace() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn self_similarity_is_maximal() {
        let graphs = dataset();
        for variant in [
            HaqjskVariant::AlignedAdjacency,
            HaqjskVariant::AlignedDensity,
        ] {
            let model = HaqjskModel::fit(&graphs, small_config(), variant).unwrap();
            let h = model.max_kernel_value();
            for g in &graphs {
                let v = model.kernel_between(g, g).unwrap();
                assert!(
                    (v - h).abs() < 1e-9,
                    "{}: self similarity {v} != {h}",
                    variant.label()
                );
            }
            // Cross similarities never exceed the self similarity.
            let cross = model.kernel_between(&graphs[0], &graphs[2]).unwrap();
            assert!(cross <= h + 1e-9);
            assert!(cross > 0.0);
        }
    }

    #[test]
    fn kernel_is_symmetric() {
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedDensity).unwrap();
        let ab = model.kernel_between(&graphs[1], &graphs[3]).unwrap();
        let ba = model.kernel_between(&graphs[3], &graphs[1]).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn kernel_is_permutation_invariant() {
        // The headline theoretical property: relabelling a graph does not
        // change its HAQJSK kernel values.
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let perm = vec![5, 2, 0, 4, 1, 3];
        let relabelled = graphs[2].permute(&perm).unwrap();
        for other in &graphs {
            let original = model.kernel_between(&graphs[2], other).unwrap();
            let after = model.kernel_between(&relabelled, other).unwrap();
            assert!(
                (original - after).abs() < 1e-9,
                "kernel moved under relabelling: {original} vs {after}"
            );
        }
    }

    #[test]
    fn gram_matrix_is_positive_semidefinite() {
        let graphs = dataset();
        for variant in [
            HaqjskVariant::AlignedAdjacency,
            HaqjskVariant::AlignedDensity,
        ] {
            let model = HaqjskModel::fit(&graphs, small_config(), variant).unwrap();
            let gram = HaqjskModel::gram_matrix(&model, &graphs).unwrap();
            assert_eq!(gram.len(), graphs.len());
            assert!(
                gram.is_positive_semidefinite(1e-7).unwrap(),
                "{} Gram matrix should be PSD (min eigenvalue {})",
                variant.label(),
                gram.min_eigenvalue().unwrap()
            );
        }
    }

    #[test]
    fn graph_kernel_trait_matches_inherent_methods() {
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        assert_eq!(model.name(), "HAQJSK(A)");
        let via_trait = GraphKernel::compute(&model, &graphs[0], &graphs[1]);
        let direct = model.kernel_between(&graphs[0], &graphs[1]).unwrap();
        assert!((via_trait - direct).abs() < 1e-12);
        let gram_trait = GraphKernel::gram_matrix(&model, &graphs[..3]);
        let gram_direct = HaqjskModel::gram_matrix(&model, &graphs[..3]).unwrap();
        assert!((gram_trait.matrix() - gram_direct.matrix()).max_abs() < 1e-12);
    }

    #[test]
    fn gram_agrees_across_backends() {
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let reference = model
            .gram_matrix_on(&graphs, Some(BackendKind::Serial))
            .unwrap();
        for backend in BackendKind::ALL {
            let gram = model.gram_matrix_on(&graphs, Some(backend)).unwrap();
            assert_eq!(
                gram.matrix(),
                reference.matrix(),
                "backend {backend} must be byte-identical to the serial path"
            );
        }
    }

    #[test]
    fn windowed_gram_slides_over_the_stream() {
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedDensity).unwrap();
        let cache = FeatureCache::new();
        let window = 3;

        // Stream the graphs one at a time through the windowed API.
        let mut served: Vec<Graph> = graphs[..2].to_vec();
        let mut gram = model.gram_matrix_cached(&served, &cache).unwrap();
        for g in &graphs[2..] {
            served.push(g.clone());
            gram = model
                .gram_matrix_windowed(&gram, &served, window, &cache)
                .unwrap();
            if served.len() > window {
                served.drain(..served.len() - window);
            }
            assert_eq!(gram.len(), served.len().min(window));
        }

        // The final window equals a from-scratch Gram over the same graphs.
        let direct = model.gram_matrix_cached(&served, &cache).unwrap();
        assert_eq!(gram.matrix(), direct.matrix());

        // Degenerate window sizes are rejected.
        assert!(model
            .gram_matrix_windowed(&gram, &served, 0, &cache)
            .is_err());
    }

    #[test]
    fn aligned_graph_weight_counts_density_payload() {
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let aligned = model.transform(&graphs[0]).unwrap();
        let payload: usize = aligned
            .adjacency_densities
            .iter()
            .chain(aligned.aligned_densities.iter())
            .map(|rho| rho.dim() * rho.dim() * std::mem::size_of::<f64>())
            .sum();
        assert!(CacheWeight::weight(&aligned) >= payload);
        assert!(payload > 0);
    }

    #[test]
    fn out_of_sample_graphs_are_supported() {
        let graphs = dataset();
        let model =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedDensity).unwrap();
        // A graph that was never part of the training set.
        let unseen = erdos_renyi(10, 0.35, 99);
        let v = model.kernel_between(&unseen, &graphs[0]).unwrap();
        assert!(v > 0.0);
        assert!(v <= model.max_kernel_value() + 1e-9);
    }

    #[test]
    fn variants_give_different_but_correlated_kernels() {
        let graphs = dataset();
        let model_a =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let model_d =
            HaqjskModel::fit(&graphs, small_config(), HaqjskVariant::AlignedDensity).unwrap();
        let mut differs = false;
        for i in 0..graphs.len() {
            for j in (i + 1)..graphs.len() {
                let a = model_a.kernel_between(&graphs[i], &graphs[j]).unwrap();
                let d = model_d.kernel_between(&graphs[i], &graphs[j]).unwrap();
                if (a - d).abs() > 1e-6 {
                    differs = true;
                }
            }
        }
        assert!(differs, "the two variants should not coincide numerically");
    }
}
