//! Hierarchical transitive aligned graph structures (Eq. 18–25).
//!
//! Given the correspondence matrices `C^{h,k}_p`, each graph is transformed
//! into two families of fixed-size structures:
//!
//! * the **aligned adjacency matrices** `A^{h,k}_p = C^{h,k}_pᵀ A_p C^{h,k}_p`
//!   averaged over `k` into `Ā^h_p` (Eq. 22–23), and
//! * the **aligned density matrices** `ρ^{h,k}_p = C^{h,k}_pᵀ ρ_p C^{h,k}_p`
//!   averaged over `k` into `ρ̄^h_p` (Eq. 24–25), re-normalised to unit trace
//!   so they remain valid quantum states.
//!
//! The paper's Eq. (19)/(21) literally write `C^{1,k}ᵀ X C^{h,k}`, which is
//! rectangular whenever the level-1 and level-h prototype sets differ in
//! size; the surrounding text, Eq. (28) and the positive-definiteness lemma
//! all require square fixed-size matrices in `R^{|P^{h,k}| × |P^{h,k}|}`, so
//! this implementation uses the square congruence `C^{h,k}ᵀ X C^{h,k}` and
//! documents the discrepancy (see DESIGN.md).

use crate::correspondence::GraphCorrespondences;
use haqjsk_graph::Graph;
use haqjsk_linalg::{LinalgError, Matrix};
use haqjsk_quantum::{ctqw_density_infinite, DensityMatrix};

/// The hierarchical transitive aligned adjacency matrices `Ā^h_p` of one
/// graph: one fixed-size weighted adjacency matrix per hierarchy level.
pub fn aligned_adjacency_family(
    graph: &Graph,
    correspondences: &GraphCorrespondences,
) -> Vec<Matrix> {
    let adjacency = graph.adjacency_matrix();
    let levels = correspondences.num_levels();
    let max_k = correspondences.max_layers();
    let mut family = Vec::with_capacity(levels);
    for h in 1..=levels {
        let mut accumulated: Option<Matrix> = None;
        for k in 1..=max_k {
            let aligned = correspondences.at(h, k).transform(&adjacency);
            accumulated = Some(match accumulated {
                None => aligned,
                Some(acc) => &acc + &aligned,
            });
        }
        let mut averaged = accumulated.expect("at least one layer");
        averaged = averaged.scale(1.0 / max_k as f64);
        family.push(averaged);
    }
    family
}

/// The hierarchical transitive aligned density matrices `ρ̄^h_p` of one
/// graph: the CTQW density matrix of the original graph pushed through the
/// correspondences, averaged over `k`, and re-normalised to a valid state.
pub fn aligned_density_family(
    graph: &Graph,
    correspondences: &GraphCorrespondences,
) -> Result<Vec<DensityMatrix>, LinalgError> {
    let rho = ctqw_density_infinite(graph)?;
    let levels = correspondences.num_levels();
    let max_k = correspondences.max_layers();
    let mut family = Vec::with_capacity(levels);
    for h in 1..=levels {
        let mut accumulated: Option<Matrix> = None;
        for k in 1..=max_k {
            let aligned = correspondences.at(h, k).transform(rho.matrix());
            accumulated = Some(match accumulated {
                None => aligned,
                Some(acc) => &acc + &aligned,
            });
        }
        let averaged = accumulated
            .expect("at least one layer")
            .scale(1.0 / max_k as f64);
        family.push(DensityMatrix::from_unnormalized(&averaged)?);
    }
    Ok(family)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HaqjskConfig;
    use crate::correspondence::GraphCorrespondences;
    use crate::db_representation::DbRepresentations;
    use crate::hierarchy::PrototypeHierarchy;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    fn setup() -> (Vec<Graph>, DbRepresentations, PrototypeHierarchy) {
        let graphs = vec![path_graph(5), cycle_graph(6), star_graph(7)];
        let reps = DbRepresentations::compute_auto(&graphs, 3);
        let config = HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 6,
            ..HaqjskConfig::small()
        };
        let hierarchy = PrototypeHierarchy::build(&reps, &config);
        (graphs, reps, hierarchy)
    }

    #[test]
    fn aligned_adjacency_is_fixed_size_and_symmetric() {
        let (graphs, reps, hierarchy) = setup();
        for (gi, graph) in graphs.iter().enumerate() {
            let corr = GraphCorrespondences::compute(&reps, gi, &hierarchy);
            let family = aligned_adjacency_family(graph, &corr);
            assert_eq!(family.len(), hierarchy.num_levels());
            for (h, aligned) in family.iter().enumerate() {
                let m = hierarchy.prototypes_at(h + 1, 1);
                assert_eq!(aligned.shape(), (m, m));
                assert!(aligned.is_symmetric(1e-9));
                // The aligned adjacency conserves the total edge mass of the
                // original graph (each of the K transforms conserves it and
                // we average K of them).
                assert!((aligned.sum() - graph.adjacency_matrix().sum()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn aligned_density_is_valid_state_per_level() {
        let (graphs, reps, hierarchy) = setup();
        for (gi, graph) in graphs.iter().enumerate() {
            let corr = GraphCorrespondences::compute(&reps, gi, &hierarchy);
            let family = aligned_density_family(graph, &corr).unwrap();
            assert_eq!(family.len(), hierarchy.num_levels());
            for rho in &family {
                assert!((rho.matrix().trace() - 1.0).abs() < 1e-9);
                assert!(rho.spectrum().iter().all(|&l| l >= -1e-8));
            }
        }
    }

    #[test]
    fn graphs_of_different_sizes_map_to_identical_shapes() {
        // The whole point of the construction: arbitrary-sized graphs become
        // fixed-sized structures that can be compared entry-wise.
        let (graphs, reps, hierarchy) = setup();
        let corr0 = GraphCorrespondences::compute(&reps, 0, &hierarchy);
        let corr2 = GraphCorrespondences::compute(&reps, 2, &hierarchy);
        let fam0 = aligned_adjacency_family(&graphs[0], &corr0);
        let fam2 = aligned_adjacency_family(&graphs[2], &corr2);
        assert_ne!(graphs[0].num_vertices(), graphs[2].num_vertices());
        for (a, b) in fam0.iter().zip(fam2.iter()) {
            assert_eq!(a.shape(), b.shape());
        }
        let dens0 = aligned_density_family(&graphs[0], &corr0).unwrap();
        let dens2 = aligned_density_family(&graphs[2], &corr2).unwrap();
        for (a, b) in dens0.iter().zip(dens2.iter()) {
            assert_eq!(a.dim(), b.dim());
        }
    }

    #[test]
    fn aligned_structures_are_permutation_invariant() {
        // Relabelling a graph's vertices must not change its aligned
        // structures, because the vertex representations (and hence the
        // prototype assignments) are label-independent. This is the
        // permutation-invariance property of the Lemma.
        let original = vec![star_graph(6), cycle_graph(5), path_graph(7)];
        let perm = vec![3, 5, 0, 2, 4, 1];
        let mut permuted = original.clone();
        permuted[0] = original[0].permute(&perm).unwrap();

        let config = HaqjskConfig {
            hierarchy_levels: 2,
            num_prototypes: 5,
            ..HaqjskConfig::small()
        };
        // The prototype hierarchy is fixed (built once on the original
        // dataset); both the original and the relabelled copy of graph 0 are
        // aligned against the same prototypes, which is exactly how a fitted
        // model treats incoming graphs.
        let reps_a = DbRepresentations::compute_auto(&original, 3);
        let reps_b = DbRepresentations::compute_auto(&permuted, 3);
        let hier_a = PrototypeHierarchy::build(&reps_a, &config);
        let corr_a = GraphCorrespondences::compute(&reps_a, 0, &hier_a);
        let corr_b = GraphCorrespondences::compute(&reps_b, 0, &hier_a);
        let fam_a = aligned_adjacency_family(&original[0], &corr_a);
        let fam_b = aligned_adjacency_family(&permuted[0], &corr_b);
        for (a, b) in fam_a.iter().zip(fam_b.iter()) {
            assert!(
                (a - b).max_abs() < 1e-9,
                "aligned adjacency changed under relabelling"
            );
        }
    }
}
