//! Hierarchical prototype representations (Eq. 16 / Fig. 2 of the paper).
//!
//! For every layer parameter `k`, the 0-level prototype set is the pooled set
//! of `k`-dimensional vertex representations of all graphs; the 1-level
//! prototypes are the κ-means centroids of that set; and each further level
//! `h` is obtained by running κ-means again on the `h-1`-level prototypes,
//! yielding a strictly coarser description of the shared representation
//! space. Because every graph is later aligned to the *same* prototype sets,
//! the induced vertex correspondences are transitive across the whole
//! dataset — the property the positive-definiteness proof relies on.

use crate::config::HaqjskConfig;
use crate::db_representation::DbRepresentations;
use crate::kmeans::KMeans;

/// The prototype hierarchy for one layer parameter `k`: `levels[h-1]` holds
/// the `h`-level prototype vectors (each of dimension `k`).
#[derive(Debug, Clone)]
pub struct LayerHierarchy {
    /// The layer parameter `k` this hierarchy describes.
    pub k: usize,
    /// Prototype sets, one per hierarchy level (1-based level `h` is stored
    /// at index `h - 1`).
    pub levels: Vec<Vec<Vec<f64>>>,
}

impl LayerHierarchy {
    /// Prototypes at 1-based level `h`.
    pub fn prototypes(&self, h: usize) -> &[Vec<f64>] {
        &self.levels[h - 1]
    }

    /// Number of hierarchy levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }
}

/// The full family of prototype hierarchies `HP^{H,k}(G)` for `k = 1..K`.
#[derive(Debug, Clone)]
pub struct PrototypeHierarchy {
    layers: Vec<LayerHierarchy>,
}

impl PrototypeHierarchy {
    /// Assembles a hierarchy from pre-computed layer hierarchies (used when
    /// restoring a persisted model).
    pub fn from_layers(layers: Vec<LayerHierarchy>) -> Self {
        PrototypeHierarchy { layers }
    }

    /// Builds the hierarchy from the pooled depth-based representations of a
    /// dataset, following the configuration's prototype counts per level.
    pub fn build(representations: &DbRepresentations, config: &HaqjskConfig) -> Self {
        let mut layers = Vec::with_capacity(representations.max_layers());
        for k in 1..=representations.max_layers() {
            let pooled = representations.pooled_representations(k);
            let mut levels: Vec<Vec<Vec<f64>>> = Vec::with_capacity(config.hierarchy_levels);
            let mut current = pooled;
            for h in 1..=config.hierarchy_levels {
                let requested = config.prototypes_at_level(h);
                let kmeans = KMeans {
                    k: requested,
                    max_iterations: config.kmeans_max_iterations,
                    tolerance: 1e-9,
                    // Mix level and layer into the seed so each clustering is
                    // independent but still deterministic.
                    seed: config
                        .seed
                        .wrapping_add(h as u64)
                        .wrapping_mul(1_000_003)
                        .wrapping_add(k as u64),
                };
                let result = kmeans.fit(&current);
                levels.push(result.centroids.clone());
                current = result.centroids;
                if current.is_empty() {
                    break;
                }
            }
            layers.push(LayerHierarchy { k, levels });
        }
        PrototypeHierarchy { layers }
    }

    /// The hierarchy for layer parameter `k` (1-based).
    pub fn layer(&self, k: usize) -> &LayerHierarchy {
        &self.layers[k - 1]
    }

    /// The largest layer parameter `K` covered.
    pub fn max_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of hierarchy levels available (minimum over layers, normally
    /// identical for all of them).
    pub fn num_levels(&self) -> usize {
        self.layers
            .iter()
            .map(LayerHierarchy::num_levels)
            .min()
            .unwrap_or(0)
    }

    /// Number of prototypes at 1-based level `h` for layer `k`.
    pub fn prototypes_at(&self, h: usize, k: usize) -> usize {
        self.layer(k).prototypes(h).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, erdos_renyi, path_graph, star_graph};
    use haqjsk_graph::Graph;

    fn dataset() -> Vec<Graph> {
        vec![
            path_graph(6),
            cycle_graph(7),
            star_graph(5),
            erdos_renyi(8, 0.4, 1),
            erdos_renyi(9, 0.3, 2),
        ]
    }

    fn small_config() -> HaqjskConfig {
        HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 8,
            layer_cap: 3,
            ..HaqjskConfig::small()
        }
    }

    #[test]
    fn hierarchy_has_expected_shape() {
        let graphs = dataset();
        let reps = DbRepresentations::compute_auto(&graphs, 3);
        let config = small_config();
        let hierarchy = PrototypeHierarchy::build(&reps, &config);
        assert_eq!(hierarchy.max_layers(), reps.max_layers());
        assert_eq!(hierarchy.num_levels(), 3);
        for k in 1..=hierarchy.max_layers() {
            for h in 1..=3 {
                let protos = hierarchy.layer(k).prototypes(h);
                assert!(!protos.is_empty());
                // Each prototype is k-dimensional.
                assert!(protos.iter().all(|p| p.len() == k));
                // Never more prototypes than requested.
                assert!(protos.len() <= config.prototypes_at_level(h));
            }
        }
    }

    #[test]
    fn deeper_levels_have_no_more_prototypes() {
        let graphs = dataset();
        let reps = DbRepresentations::compute_auto(&graphs, 3);
        let hierarchy = PrototypeHierarchy::build(&reps, &small_config());
        for k in 1..=hierarchy.max_layers() {
            for h in 2..=hierarchy.num_levels() {
                assert!(
                    hierarchy.prototypes_at(h, k) <= hierarchy.prototypes_at(h - 1, k),
                    "level {h} should be at most as fine as level {}",
                    h - 1
                );
            }
        }
    }

    #[test]
    fn hierarchy_is_deterministic_for_fixed_seed() {
        let graphs = dataset();
        let reps = DbRepresentations::compute_auto(&graphs, 3);
        let config = small_config();
        let a = PrototypeHierarchy::build(&reps, &config);
        let b = PrototypeHierarchy::build(&reps, &config);
        for k in 1..=a.max_layers() {
            for h in 1..=a.num_levels() {
                assert_eq!(a.layer(k).prototypes(h), b.layer(k).prototypes(h));
            }
        }
    }

    #[test]
    fn prototype_count_is_capped_by_vertex_count() {
        // A tiny dataset cannot support 256 prototypes; the effective count
        // is the number of pooled vertex representations.
        let graphs = vec![path_graph(3), path_graph(4)];
        let reps = DbRepresentations::compute_auto(&graphs, 2);
        let config = HaqjskConfig {
            num_prototypes: 256,
            hierarchy_levels: 2,
            ..HaqjskConfig::small()
        };
        let hierarchy = PrototypeHierarchy::build(&reps, &config);
        assert!(hierarchy.prototypes_at(1, 1) <= 7);
    }
}
