//! Correspondence matrices between graph vertices and hierarchical
//! prototypes (Eq. 15 / Eq. 17 of the paper).
//!
//! `C^{h,k}_p ∈ {0,1}^{|V_p| × |P^{h,k}|}` has a single 1 per row: vertex
//! `v_i` is aligned to its nearest `h`-level prototype in the `k`-dimensional
//! depth-based representation space. Two vertices (of the same or of
//! different graphs) are *transitively aligned* whenever they map to the same
//! prototype — the key property that makes the resulting kernels positive
//! definite.

use crate::db_representation::DbRepresentations;
use crate::hierarchy::PrototypeHierarchy;
use crate::kmeans::nearest;
use haqjsk_linalg::Matrix;

/// The correspondence matrix of one graph against one prototype set.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrespondenceMatrix {
    matrix: Matrix,
    /// `assignment[v]` = prototype index that vertex `v` is aligned to.
    assignment: Vec<usize>,
}

impl CorrespondenceMatrix {
    /// Aligns each vertex representation to its nearest prototype.
    pub fn align(vertex_representations: &[Vec<f64>], prototypes: &[Vec<f64>]) -> Self {
        let n = vertex_representations.len();
        let m = prototypes.len();
        let mut matrix = Matrix::zeros(n, m);
        let mut assignment = Vec::with_capacity(n);
        for (i, rep) in vertex_representations.iter().enumerate() {
            if m == 0 {
                assignment.push(0);
                continue;
            }
            let (j, _) = nearest(rep, prototypes);
            matrix[(i, j)] = 1.0;
            assignment.push(j);
        }
        CorrespondenceMatrix { matrix, assignment }
    }

    /// The 0/1 matrix `C^{h,k}_p`.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Number of vertices (rows).
    pub fn num_vertices(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of prototypes (columns).
    pub fn num_prototypes(&self) -> usize {
        self.matrix.cols()
    }

    /// Prototype index assigned to vertex `v`.
    pub fn prototype_of(&self, v: usize) -> usize {
        self.assignment[v]
    }

    /// Congruence transform `Cᵀ X C` mapping an `n x n` vertex-indexed
    /// matrix (adjacency or density) into the fixed-size prototype-indexed
    /// space — the aligned-structure construction of Eq. 19 / Eq. 21.
    pub fn transform(&self, vertex_matrix: &Matrix) -> Matrix {
        let n = self.num_vertices();
        let m = self.num_prototypes();
        debug_assert_eq!(vertex_matrix.rows(), n);
        debug_assert_eq!(vertex_matrix.cols(), n);
        if m == 0 {
            return Matrix::zeros(0, 0);
        }
        // Because C has exactly one 1 per row, CᵀXC can be accumulated
        // directly: out[a(i)][a(j)] += X[i][j]. This is O(n²) instead of two
        // dense O(n² m) multiplications.
        let mut out = Matrix::zeros(m, m);
        for i in 0..n {
            let pi = self.assignment[i];
            for j in 0..n {
                let x = vertex_matrix[(i, j)];
                if x != 0.0 {
                    out[(pi, self.assignment[j])] += x;
                }
            }
        }
        out
    }

    /// Whether two vertices of (possibly different) graphs are transitively
    /// aligned, i.e. mapped to the same prototype.
    pub fn transitively_aligned(&self, v: usize, other: &CorrespondenceMatrix, w: usize) -> bool {
        self.prototype_of(v) == other.prototype_of(w)
    }
}

/// All correspondence matrices of one graph: indexed by hierarchy level `h`
/// (1-based) and layer parameter `k` (1-based).
#[derive(Debug, Clone)]
pub struct GraphCorrespondences {
    /// `per_level[h-1][k-1]` is `C^{h,k}_p`.
    per_level: Vec<Vec<CorrespondenceMatrix>>,
}

impl GraphCorrespondences {
    /// Computes every `C^{h,k}_p` for one graph against a prototype
    /// hierarchy.
    pub fn compute(
        representations: &DbRepresentations,
        graph_index: usize,
        hierarchy: &PrototypeHierarchy,
    ) -> Self {
        let levels = hierarchy.num_levels();
        let max_k = hierarchy.max_layers();
        let mut per_level = Vec::with_capacity(levels);
        for h in 1..=levels {
            let mut per_k = Vec::with_capacity(max_k);
            for k in 1..=max_k {
                let reps = representations.graph_representations(graph_index, k);
                let prototypes = hierarchy.layer(k).prototypes(h);
                per_k.push(CorrespondenceMatrix::align(&reps, prototypes));
            }
            per_level.push(per_k);
        }
        GraphCorrespondences { per_level }
    }

    /// `C^{h,k}` for 1-based `h` and `k`.
    pub fn at(&self, h: usize, k: usize) -> &CorrespondenceMatrix {
        &self.per_level[h - 1][k - 1]
    }

    /// Number of hierarchy levels.
    pub fn num_levels(&self) -> usize {
        self.per_level.len()
    }

    /// Number of layer parameters.
    pub fn max_layers(&self) -> usize {
        self.per_level.first().map(Vec::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HaqjskConfig;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn rows_have_exactly_one_assignment() {
        let reps = vec![vec![0.1, 0.2], vec![5.0, 5.0], vec![0.15, 0.25]];
        let prototypes = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        let c = CorrespondenceMatrix::align(&reps, &prototypes);
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(c.num_prototypes(), 2);
        for i in 0..3 {
            let row_sum: f64 = (0..2).map(|j| c.matrix()[(i, j)]).sum();
            assert_eq!(row_sum, 1.0);
        }
        assert_eq!(c.prototype_of(0), 0);
        assert_eq!(c.prototype_of(1), 1);
        assert_eq!(c.prototype_of(2), 0);
        assert!(c.transitively_aligned(0, &c, 2));
        assert!(!c.transitively_aligned(0, &c, 1));
    }

    #[test]
    fn transform_accumulates_adjacency_mass() {
        // Path 0-1-2 with vertices 0,2 aligned to prototype 0 and vertex 1
        // aligned to prototype 1.
        let reps = vec![vec![0.0], vec![10.0], vec![0.0]];
        let prototypes = vec![vec![0.0], vec![10.0]];
        let c = CorrespondenceMatrix::align(&reps, &prototypes);
        let adjacency = haqjsk_graph::generators::path_graph(3).adjacency_matrix();
        let aligned = c.transform(&adjacency);
        assert_eq!(aligned.shape(), (2, 2));
        // Edges (0,1) and (1,2) both connect prototype 0 with prototype 1.
        assert_eq!(aligned[(0, 1)], 2.0);
        assert_eq!(aligned[(1, 0)], 2.0);
        assert_eq!(aligned[(0, 0)], 0.0);
        assert_eq!(aligned[(1, 1)], 0.0);
        // Total mass is preserved by the congruence with a row-stochastic
        // 0/1 matrix.
        assert_eq!(aligned.sum(), adjacency.sum());
        // Matches the explicit matrix product CᵀAC.
        let explicit = c
            .matrix()
            .transpose()
            .matmul(&adjacency)
            .unwrap()
            .matmul(c.matrix())
            .unwrap();
        assert!((&explicit - &aligned).max_abs() < 1e-12);
    }

    #[test]
    fn empty_prototype_set_is_tolerated() {
        let reps = vec![vec![1.0], vec![2.0]];
        let c = CorrespondenceMatrix::align(&reps, &[]);
        assert_eq!(c.num_prototypes(), 0);
        let transformed = c.transform(&Matrix::identity(2));
        assert_eq!(transformed.shape(), (0, 0));
    }

    #[test]
    fn graph_correspondences_cover_all_levels_and_layers() {
        let graphs = vec![path_graph(5), cycle_graph(6), star_graph(4)];
        let reps = DbRepresentations::compute_auto(&graphs, 3);
        let config = HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 6,
            ..HaqjskConfig::small()
        };
        let hierarchy = PrototypeHierarchy::build(&reps, &config);
        let corr = GraphCorrespondences::compute(&reps, 1, &hierarchy);
        assert_eq!(corr.num_levels(), 3);
        assert_eq!(corr.max_layers(), reps.max_layers());
        for h in 1..=3 {
            for k in 1..=corr.max_layers() {
                let c = corr.at(h, k);
                assert_eq!(c.num_vertices(), graphs[1].num_vertices());
                assert_eq!(c.num_prototypes(), hierarchy.prototypes_at(h, k));
            }
        }
    }

    #[test]
    fn identical_graphs_get_identical_correspondences() {
        // Transitivity in action: two copies of the same graph align to the
        // same prototypes, so their correspondence matrices coincide.
        let graphs = vec![cycle_graph(5), cycle_graph(5), path_graph(6)];
        let reps = DbRepresentations::compute_auto(&graphs, 3);
        let config = HaqjskConfig {
            hierarchy_levels: 2,
            num_prototypes: 4,
            ..HaqjskConfig::small()
        };
        let hierarchy = PrototypeHierarchy::build(&reps, &config);
        let c0 = GraphCorrespondences::compute(&reps, 0, &hierarchy);
        let c1 = GraphCorrespondences::compute(&reps, 1, &hierarchy);
        for h in 1..=2 {
            for k in 1..=reps.max_layers() {
                assert_eq!(c0.at(h, k), c1.at(h, k));
            }
        }
    }
}
