//! κ-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! The hierarchical prototype construction of the paper (Eq. 13–16) is plain
//! κ-means over vertex representations, applied repeatedly: once over all
//! vertex representations to obtain the 1-level prototypes, then over the
//! `h-1`-level prototypes to obtain the `h`-level ones. The implementation is
//! deterministic given its seed so kernels and experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a κ-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids (the prototype representations).
    pub centroids: Vec<Vec<f64>>,
    /// Index of the centroid assigned to each input point.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances (the objective of
    /// Eq. 13).
    pub inertia: f64,
    /// Number of Lloyd iterations that were executed.
    pub iterations: usize,
}

/// Configuration for a κ-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Requested number of clusters (capped at the number of points).
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the centroid movement (squared distance).
    pub tolerance: f64,
    /// RNG seed for the k-means++ initialisation.
    pub seed: u64,
}

impl KMeans {
    /// Creates a κ-means configuration with default iteration budget.
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iterations: 100,
            tolerance: 1e-9,
            seed,
        }
    }

    /// Runs κ-means on the given points. Returns centroids, assignments and
    /// the final inertia. If there are fewer points than clusters, the
    /// points themselves become the centroids.
    pub fn fit(&self, points: &[Vec<f64>]) -> KMeansResult {
        let n = points.len();
        if n == 0 {
            return KMeansResult {
                centroids: Vec::new(),
                assignments: Vec::new(),
                inertia: 0.0,
                iterations: 0,
            };
        }
        let dim = points[0].len();
        debug_assert!(points.iter().all(|p| p.len() == dim), "ragged point set");
        let k = self.k.max(1).min(n);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids = self.init_plus_plus(points, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let mut iterations = 0;

        for iter in 0..self.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest(p, &centroids).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0_f64; dim]; k];
            let mut counts = vec![0usize; k];
            for (i, p) in points.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, &x) in sums[c].iter_mut().zip(p.iter()) {
                    *s += x;
                }
            }
            let mut movement = 0.0_f64;
            for c in 0..k {
                if counts[c] == 0 {
                    // Empty cluster: re-seed it at the point farthest from
                    // its current centroid to keep k clusters alive.
                    let (far_idx, _) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            (
                                i,
                                haqjsk_linalg::vector::squared_distance(
                                    p,
                                    &centroids[assignments[i]],
                                ),
                            )
                        })
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                        .expect("non-empty point set");
                    movement +=
                        haqjsk_linalg::vector::squared_distance(&centroids[c], &points[far_idx]);
                    centroids[c] = points[far_idx].clone();
                    continue;
                }
                let new_centroid: Vec<f64> =
                    sums[c].iter().map(|&s| s / counts[c] as f64).collect();
                movement += haqjsk_linalg::vector::squared_distance(&centroids[c], &new_centroid);
                centroids[c] = new_centroid;
            }
            if movement <= self.tolerance {
                break;
            }
        }

        // Final assignment and inertia.
        let mut inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (c, d2) = nearest(p, &centroids);
            assignments[i] = c;
            inertia += d2;
        }

        KMeansResult {
            centroids,
            assignments,
            inertia,
            iterations,
        }
    }

    /// k-means++ initialisation: the first centroid is uniform, every
    /// subsequent one is drawn with probability proportional to the squared
    /// distance to the nearest already-chosen centroid.
    fn init_plus_plus(&self, points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let n = points.len();
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points[rng.gen_range(0..n)].clone());
        let mut d2 = vec![0.0_f64; n];
        while centroids.len() < k {
            let mut total = 0.0;
            for (i, p) in points.iter().enumerate() {
                d2[i] = haqjsk_linalg::vector::squared_distance(
                    p,
                    centroids.last().expect("non-empty"),
                )
                .min(if centroids.len() == 1 {
                    f64::INFINITY
                } else {
                    d2[i]
                });
                total += d2[i];
            }
            if total <= 0.0 {
                // All remaining points coincide with existing centroids.
                centroids.push(points[rng.gen_range(0..n)].clone());
                continue;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target <= w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            centroids.push(points[chosen].clone());
        }
        centroids
    }
}

/// Index and squared distance of the nearest centroid to `point`.
pub fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d2 = haqjsk_linalg::vector::squared_distance(point, centroid);
        if d2 < best_d2 {
            best_d2 = d2;
            best = c;
        }
    }
    (best, best_d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            points.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        points
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let result = KMeans::new(2, 1).fit(&two_blobs());
        assert_eq!(result.centroids.len(), 2);
        // Points 2i and 2i+1 belong to different blobs, so their assignments
        // must differ and be internally consistent.
        let first = result.assignments[0];
        let second = result.assignments[1];
        assert_ne!(first, second);
        for i in 0..10 {
            assert_eq!(result.assignments[2 * i], first);
            assert_eq!(result.assignments[2 * i + 1], second);
        }
        assert!(result.inertia < 1.0);
        // One centroid near (0,0), one near (10,10).
        let mut xs: Vec<f64> = result.centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0] < 1.0 && xs[1] > 9.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let points = two_blobs();
        let a = KMeans::new(3, 7).fit(&points);
        let b = KMeans::new(3, 7).fit(&points);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn more_clusters_than_points_caps_k() {
        let points = vec![vec![1.0], vec![2.0], vec![3.0]];
        let result = KMeans::new(10, 0).fit(&points);
        assert_eq!(result.centroids.len(), 3);
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn empty_input_and_single_cluster() {
        let empty: Vec<Vec<f64>> = Vec::new();
        let r = KMeans::new(4, 0).fit(&empty);
        assert!(r.centroids.is_empty());
        assert!(r.assignments.is_empty());

        let points = vec![vec![1.0, 1.0], vec![3.0, 3.0]];
        let r1 = KMeans::new(1, 0).fit(&points);
        assert_eq!(r1.centroids.len(), 1);
        assert_eq!(r1.centroids[0], vec![2.0, 2.0]);
    }

    #[test]
    fn identical_points_do_not_break_initialisation() {
        let points = vec![vec![5.0, 5.0]; 8];
        let r = KMeans::new(3, 11).fit(&points);
        assert_eq!(r.centroids.len(), 3);
        assert!(r.inertia < 1e-12);
        assert!(r.assignments.iter().all(|&a| a < 3));
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let points: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let k2 = KMeans::new(2, 3).fit(&points).inertia;
        let k8 = KMeans::new(8, 3).fit(&points).inertia;
        assert!(k8 < k2);
    }

    #[test]
    fn nearest_helper() {
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        let (idx, d2) = nearest(&[9.0, 0.0], &centroids);
        assert_eq!(idx, 1);
        assert!((d2 - 1.0).abs() < 1e-12);
    }
}
