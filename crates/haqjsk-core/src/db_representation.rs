//! Depth-based (DB) vectorial vertex representations.
//!
//! Following Sec. III-A of the paper (and the depth-based complexity traces
//! of Bai & Hancock), each vertex `v` of each graph is represented, for a
//! layer parameter `k`, by the `k`-dimensional vector of Shannon entropies of
//! its `1..k`-layer expansion subgraphs. The HAQJSK kernels use the whole
//! family `k = 1..K`, where `K` is the greatest shortest-path length over the
//! dataset (capped for tractability).

use haqjsk_graph::shortest_paths::greatest_shortest_path_length;
use haqjsk_graph::subgraph::depth_based_traces;
use haqjsk_graph::Graph;

/// Depth-based representations of every vertex of every graph in a dataset.
#[derive(Debug, Clone)]
pub struct DbRepresentations {
    /// `traces[g][v]` is the `K`-dimensional DB trace of vertex `v` of graph
    /// `g`.
    traces: Vec<Vec<Vec<f64>>>,
    /// The largest layer `K`.
    max_layers: usize,
}

impl DbRepresentations {
    /// Computes the DB traces of every vertex of every graph up to layer
    /// `max_layers`.
    pub fn compute(graphs: &[Graph], max_layers: usize) -> Self {
        let max_layers = max_layers.max(1);
        let traces = graphs
            .iter()
            .map(|g| depth_based_traces(g, max_layers))
            .collect();
        DbRepresentations { traces, max_layers }
    }

    /// Derives `K` from the dataset (greatest shortest-path length, clamped
    /// to `[1, layer_cap]`) and computes the representations.
    pub fn compute_auto(graphs: &[Graph], layer_cap: usize) -> Self {
        let k = greatest_shortest_path_length(graphs).clamp(1, layer_cap.max(1));
        Self::compute(graphs, k)
    }

    /// The largest layer `K`.
    pub fn max_layers(&self) -> usize {
        self.max_layers
    }

    /// Number of graphs covered.
    pub fn num_graphs(&self) -> usize {
        self.traces.len()
    }

    /// The `k`-dimensional representation `R^k(v)` of vertex `v` of graph
    /// `g` — the first `k` entries of its DB trace.
    pub fn representation(&self, graph: usize, vertex: usize, k: usize) -> &[f64] {
        &self.traces[graph][vertex][..k.min(self.max_layers)]
    }

    /// All `k`-dimensional vertex representations of one graph.
    pub fn graph_representations(&self, graph: usize, k: usize) -> Vec<Vec<f64>> {
        let k = k.min(self.max_layers);
        self.traces[graph]
            .iter()
            .map(|trace| trace[..k].to_vec())
            .collect()
    }

    /// The pooled `k`-dimensional representations of **all** vertices of
    /// **all** graphs, in graph-major order — the point set `R^k(V)` on which
    /// the 1-level prototypes are learned (Eq. 12–14).
    pub fn pooled_representations(&self, k: usize) -> Vec<Vec<f64>> {
        let k = k.min(self.max_layers);
        self.traces
            .iter()
            .flat_map(|graph| graph.iter().map(move |trace| trace[..k].to_vec()))
            .collect()
    }

    /// Total number of vertices across the dataset.
    pub fn total_vertices(&self) -> usize {
        self.traces.iter().map(|g| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    fn dataset() -> Vec<Graph> {
        vec![path_graph(5), cycle_graph(6), star_graph(4)]
    }

    #[test]
    fn shapes_are_consistent() {
        let reps = DbRepresentations::compute(&dataset(), 3);
        assert_eq!(reps.num_graphs(), 3);
        assert_eq!(reps.max_layers(), 3);
        assert_eq!(reps.total_vertices(), 5 + 6 + 4);
        assert_eq!(reps.representation(0, 0, 3).len(), 3);
        assert_eq!(reps.representation(0, 0, 2).len(), 2);
        // Requesting more layers than computed clamps.
        assert_eq!(reps.representation(0, 0, 10).len(), 3);
        assert_eq!(reps.graph_representations(1, 2).len(), 6);
        assert_eq!(reps.pooled_representations(3).len(), 15);
    }

    #[test]
    fn auto_layer_selection_uses_dataset_diameter() {
        let graphs = vec![path_graph(4), path_graph(6)]; // diameters 3 and 5
        let reps = DbRepresentations::compute_auto(&graphs, 10);
        assert_eq!(reps.max_layers(), 5);
        let capped = DbRepresentations::compute_auto(&graphs, 3);
        assert_eq!(capped.max_layers(), 3);
        // A dataset of singleton graphs still gets at least one layer.
        let trivial = vec![Graph::new(1)];
        assert_eq!(DbRepresentations::compute_auto(&trivial, 5).max_layers(), 1);
    }

    #[test]
    fn representations_are_entropy_valued() {
        let reps = DbRepresentations::compute(&dataset(), 4);
        for g in 0..reps.num_graphs() {
            for v in 0..dataset()[g].num_vertices() {
                for &x in reps.representation(g, v, 4) {
                    assert!(x.is_finite());
                    assert!(x >= 0.0);
                }
            }
        }
    }

    #[test]
    fn symmetric_vertices_share_representations() {
        let reps = DbRepresentations::compute(&[cycle_graph(6)], 3);
        // Every vertex of a cycle is equivalent, so all representations match.
        let first = reps.representation(0, 0, 3).to_vec();
        for v in 1..6 {
            assert_eq!(reps.representation(0, v, 3), first.as_slice());
        }
    }

    #[test]
    fn zero_layer_request_is_promoted_to_one() {
        let reps = DbRepresentations::compute(&dataset(), 0);
        assert_eq!(reps.max_layers(), 1);
    }
}
