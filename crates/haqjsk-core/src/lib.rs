//! # haqjsk-core
//!
//! The Hierarchical-Aligned Quantum Jensen–Shannon Kernels (HAQJSK) — the
//! primary contribution of the paper, built on the substrates of the sibling
//! crates.
//!
//! The pipeline (Sec. III of the paper) is:
//!
//! 1. **Depth-based vertex representations** (`R^k(v)`, [`db_representation`]):
//!    each vertex is described, for every layer `k = 1..K`, by the entropies
//!    of its `k`-layer expansion subgraphs.
//! 2. **Hierarchical prototypes** ([`kmeans`], [`hierarchy`]): κ-means over
//!    the vertex representations of *all* graphs gives the 1-level prototype
//!    set `P^{1,k}`; running κ-means again on the `h-1`-level prototypes gives
//!    the `h`-level prototypes (Eq. 16, Fig. 2).
//! 3. **Correspondence matrices** (`C^{h,k}_p`, [`correspondence`]): each
//!    vertex of each graph is aligned to its nearest `h`-level prototype
//!    (Eq. 15/17). Because every graph is aligned to the *same* prototypes,
//!    the correspondence is transitive across the dataset.
//! 4. **Hierarchical transitive aligned structures** ([`aligned`]): the
//!    aligned adjacency matrices `Ā^h_p` and aligned CTQW density matrices
//!    `ρ̄^h_p` (Eq. 18–25), fixed-size regardless of the original graph size.
//! 5. **The kernels** ([`model`]): HAQJSK(A) evolves a fresh CTQW on the
//!    aligned adjacency matrices and sums `exp(-D_QJS)` over levels (Eq.
//!    26–28); HAQJSK(D) applies the QJSD directly to the aligned density
//!    matrices (Eq. 29–31).
//!
//! The fitted [`HaqjskModel`] exposes `transform` for out-of-sample graphs
//! and Gram-matrix computation for datasets, and implements the
//! [`GraphKernel`](haqjsk_kernels::GraphKernel) trait so it can be swapped
//! into the same evaluation harness as every baseline kernel.

pub mod aligned;
pub mod config;
pub mod correspondence;
pub mod db_representation;
pub mod hierarchy;
pub mod kmeans;
pub mod model;
pub mod persistence;

pub use config::{HaqjskConfig, HaqjskVariant};
pub use hierarchy::PrototypeHierarchy;
pub use model::{AlignedGraph, HaqjskModel};
pub use persistence::{
    load_model_file, model_artifact_id, model_from_string, model_to_string, persisted_model_text,
    save_model_file, tmp_sibling, PersistenceError,
};
