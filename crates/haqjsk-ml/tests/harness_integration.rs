//! Integration tests of the machine-learning harness: the SVM, kNN and
//! cross-validation components working together on kernels produced by the
//! kernel crate, plus agreement checks between the two classifiers on
//! strongly separable data.

use haqjsk_graph::generators::{barabasi_albert, cycle_graph};
use haqjsk_graph::Graph;
use haqjsk_kernels::{GraphKernel, WeisfeilerLehmanKernel};
use haqjsk_ml::knn::KernelKnn;
use haqjsk_ml::{
    accuracy, confusion_matrix, cross_validate_kernel, CrossValidationConfig, OneVsOneSvm,
    SvmConfig,
};

/// Two structurally distinct graph classes and the WL kernel over them.
fn dataset_and_kernel() -> (Vec<Graph>, Vec<usize>, haqjsk_kernels::KernelMatrix) {
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..10usize {
        graphs.push(cycle_graph(9 + i % 3));
        labels.push(0);
        graphs.push(barabasi_albert(9 + i % 3, 2, i as u64));
        labels.push(1);
    }
    let kernel = WeisfeilerLehmanKernel::new(3)
        .gram_matrix(&graphs)
        .normalized();
    (graphs, labels, kernel)
}

#[test]
fn svm_and_knn_agree_on_separable_structural_classes() {
    let (_, labels, kernel) = dataset_and_kernel();
    let n = labels.len();

    // Train both classifiers on the full kernel and evaluate in-sample (the
    // point is agreement, not generalisation).
    let svm = OneVsOneSvm::train(kernel.matrix(), &labels, &SvmConfig::with_c(10.0));
    let knn = KernelKnn::fit(kernel.matrix(), &labels, 3);

    let svm_preds = svm.predict_batch(kernel.matrix());
    let selfs: Vec<f64> = (0..n).map(|i| kernel.get(i, i)).collect();
    let knn_preds = knn.predict_batch(kernel.matrix(), &selfs);

    let svm_acc = accuracy(&svm_preds, &labels);
    let knn_acc = accuracy(&knn_preds, &labels);
    assert!(svm_acc > 0.9, "SVM in-sample accuracy too low: {svm_acc}");
    assert!(knn_acc > 0.9, "kNN in-sample accuracy too low: {knn_acc}");

    // Confusion matrices are diagonal-dominant for both.
    for preds in [&svm_preds, &knn_preds] {
        let cm = confusion_matrix(preds, &labels, 2);
        assert!(cm[0][0] >= cm[0][1]);
        assert!(cm[1][1] >= cm[1][0]);
    }
}

#[test]
fn cross_validation_gives_high_accuracy_on_separable_kernel() {
    let (_, labels, kernel) = dataset_and_kernel();
    let result = cross_validate_kernel(&kernel, &labels, &CrossValidationConfig::quick());
    assert!(
        result.summary.mean_percent > 85.0,
        "expected strong CV accuracy, got {}",
        result.summary
    );
}

#[test]
fn shuffled_labels_destroy_the_signal() {
    // Control experiment: the same kernel with labels decoupled from the
    // structure must drop towards chance, proving the harness is not leaking
    // information between folds.
    let (_, labels, kernel) = dataset_and_kernel();
    let shuffled: Vec<usize> = labels
        .iter()
        .enumerate()
        .map(|(i, _)| if (i / 2 + i) % 2 == 0 { 0 } else { 1 })
        .collect();
    let informative = cross_validate_kernel(&kernel, &labels, &CrossValidationConfig::quick());
    let scrambled = cross_validate_kernel(&kernel, &shuffled, &CrossValidationConfig::quick());
    assert!(
        scrambled.summary.mean_percent < informative.summary.mean_percent,
        "scrambled labels should not outperform real ones: {} vs {}",
        scrambled.summary,
        informative.summary
    );
    assert!(
        scrambled.summary.mean_percent < 80.0,
        "scrambled labels look too learnable: {}",
        scrambled.summary
    );
}
