//! Small neural-network building blocks shared by the graph deep-learning
//! comparison models (the GCN and the WL-feature MLP).
//!
//! Only what those two models need is implemented: Xavier-style weight
//! initialisation, ReLU, a numerically stable softmax + cross-entropy, and an
//! Adam optimiser over [`Matrix`]-shaped parameters.

use haqjsk_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialisation of a `rows x cols` weight matrix.
pub fn xavier_init(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols).max(1) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// Seeded RNG helper so model constructors stay terse.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Elementwise ReLU.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|x| x.max(0.0))
}

/// Elementwise ReLU derivative mask (1 where the pre-activation was
/// positive).
pub fn relu_mask(pre_activation: &Matrix) -> Matrix {
    pre_activation.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
}

/// Numerically stable softmax over a logit vector.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Cross-entropy loss of a softmax distribution against a class index.
pub fn cross_entropy(probabilities: &[f64], class: usize) -> f64 {
    -(probabilities[class].max(1e-12)).ln()
}

/// One-hot encoding of a class index.
pub fn one_hot(class: usize, num_classes: usize) -> Vec<f64> {
    let mut v = vec![0.0; num_classes];
    v[class] = 1.0;
    v
}

/// Adam optimiser state for a single matrix-shaped parameter.
#[derive(Debug, Clone)]
pub struct Adam {
    first_moment: Matrix,
    second_moment: Matrix,
    step: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabiliser.
    pub epsilon: f64,
}

impl Adam {
    /// Creates an optimiser for a parameter of the given shape.
    pub fn new(rows: usize, cols: usize, learning_rate: f64) -> Self {
        Adam {
            first_moment: Matrix::zeros(rows, cols),
            second_moment: Matrix::zeros(rows, cols),
            step: 0,
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// Applies one Adam update to `parameter` given its gradient.
    pub fn update(&mut self, parameter: &mut Matrix, gradient: &Matrix) {
        assert_eq!(
            parameter.shape(),
            gradient.shape(),
            "gradient shape mismatch"
        );
        self.step += 1;
        let t = self.step as f64;
        for idx in 0..parameter.data().len() {
            let g = gradient.data()[idx];
            let m = self.beta1 * self.first_moment.data()[idx] + (1.0 - self.beta1) * g;
            let v = self.beta2 * self.second_moment.data()[idx] + (1.0 - self.beta2) * g * g;
            self.first_moment.data_mut()[idx] = m;
            self.second_moment.data_mut()[idx] = v;
            let m_hat = m / (1.0 - self.beta1.powf(t));
            let v_hat = v / (1.0 - self.beta2.powf(t));
            parameter.data_mut()[idx] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_limit_and_seed() {
        let mut rng = seeded_rng(1);
        let w = xavier_init(10, 20, &mut rng);
        let limit = (6.0 / 30.0_f64).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
        let mut rng2 = seeded_rng(1);
        let w2 = xavier_init(10, 20, &mut rng2);
        assert_eq!(w, w2);
    }

    #[test]
    fn relu_and_mask() {
        let m = Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.0, -3.0]]).unwrap();
        let r = relu(&m);
        assert_eq!(r[(0, 0)], 0.0);
        assert_eq!(r[(0, 1)], 2.0);
        let mask = relu_mask(&m);
        assert_eq!(mask[(0, 1)], 1.0);
        assert_eq!(mask[(1, 0)], 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Large logits do not overflow.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_and_one_hot() {
        let p = softmax(&[0.0, 0.0]);
        assert!(
            (cross_entropy(&p, 0) - 0.5_f64.recip().ln().abs()).abs() < 1e-9
                || cross_entropy(&p, 0) > 0.0
        );
        assert_eq!(one_hot(1, 3), vec![0.0, 1.0, 0.0]);
        // Perfectly confident correct prediction has ~zero loss.
        assert!(cross_entropy(&[1.0, 0.0], 0) < 1e-9);
    }

    #[test]
    fn adam_minimises_a_quadratic() {
        // Minimise f(w) = ||w - target||^2 with Adam.
        let target = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]).unwrap();
        let mut w = Matrix::zeros(2, 2);
        let mut adam = Adam::new(2, 2, 0.05);
        for _ in 0..500 {
            let grad = (&w - &target).scale(2.0);
            adam.update(&mut w, &grad);
        }
        assert!((&w - &target).max_abs() < 0.05);
    }
}
