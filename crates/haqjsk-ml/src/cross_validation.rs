//! Stratified k-fold cross-validation over precomputed kernel matrices.
//!
//! The paper's protocol: 10-fold cross-validation with a C-SVM on the
//! precomputed kernel, the optimal `C` chosen per kernel, the whole procedure
//! repeated 10 times with different fold shuffles, and the mean accuracy ±
//! standard error reported. [`cross_validate_kernel`] reproduces that
//! protocol (with configurable fold/repeat counts so the benchmark harness
//! can run reduced versions quickly).

use crate::metrics::{accuracy, AccuracySummary};
use crate::multiclass::OneVsOneSvm;
use crate::svm::SvmConfig;
use haqjsk_kernels::KernelMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the cross-validation protocol.
#[derive(Debug, Clone)]
pub struct CrossValidationConfig {
    /// Number of folds (the paper uses 10).
    pub folds: usize,
    /// Number of independent repetitions with reshuffled folds (the paper
    /// uses 10).
    pub repetitions: usize,
    /// Grid of SVM regularisation constants searched; the best value on the
    /// training portion of each fold is used.
    pub c_grid: Vec<f64>,
    /// Base RNG seed for the fold shuffles.
    pub seed: u64,
}

impl Default for CrossValidationConfig {
    fn default() -> Self {
        CrossValidationConfig {
            folds: 10,
            repetitions: 10,
            c_grid: vec![0.01, 0.1, 1.0, 10.0, 100.0],
            seed: 3,
        }
    }
}

impl CrossValidationConfig {
    /// A reduced protocol for quick experiments and tests.
    pub fn quick() -> Self {
        CrossValidationConfig {
            folds: 5,
            repetitions: 2,
            c_grid: vec![0.1, 1.0, 10.0],
            seed: 3,
        }
    }
}

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValidationResult {
    /// Per-fold, per-repetition accuracies (flattened).
    pub fold_accuracies: Vec<f64>,
    /// Aggregated mean ± standard error, in percent.
    pub summary: AccuracySummary,
}

/// Stratified fold assignment: items of each class are distributed
/// round-robin over the folds after a seeded shuffle, so every fold sees
/// approximately the class distribution of the full dataset.
pub fn stratified_folds(labels: &[usize], folds: usize, seed: u64) -> Vec<usize> {
    assert!(folds >= 2, "need at least two folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment = vec![0usize; labels.len()];
    let mut classes: Vec<usize> = labels.to_vec();
    classes.sort_unstable();
    classes.dedup();
    let mut next_fold = 0usize;
    for class in classes {
        let mut members: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] == class).collect();
        members.shuffle(&mut rng);
        for idx in members {
            assignment[idx] = next_fold % folds;
            next_fold += 1;
        }
    }
    assignment
}

/// Runs the repeated, stratified k-fold C-SVM protocol on a precomputed
/// kernel matrix. The best `C` is selected per fold by accuracy on the
/// training portion (a pragmatic stand-in for the inner cross-validation the
/// paper's "optimal C-SVM parameters" implies).
pub fn cross_validate_kernel(
    kernel: &KernelMatrix,
    labels: &[usize],
    config: &CrossValidationConfig,
) -> CrossValidationResult {
    assert_eq!(kernel.len(), labels.len(), "kernel size must match labels");
    assert!(!labels.is_empty(), "dataset must be non-empty");
    let folds = config.folds.min(labels.len()).max(2);

    let mut fold_accuracies = Vec::with_capacity(folds * config.repetitions);
    for rep in 0..config.repetitions {
        let assignment = stratified_folds(labels, folds, config.seed + rep as u64);
        for fold in 0..folds {
            let test_idx: Vec<usize> = (0..labels.len())
                .filter(|&i| assignment[i] == fold)
                .collect();
            let train_idx: Vec<usize> = (0..labels.len())
                .filter(|&i| assignment[i] != fold)
                .collect();
            if test_idx.is_empty() || train_idx.is_empty() {
                continue;
            }
            let train_labels: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
            let test_labels: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
            let train_kernel = kernel.select(&train_idx, &train_idx);
            let test_kernel = kernel.select(&test_idx, &train_idx);

            // Grid search over C on the training portion.
            let mut best_c = config.c_grid.first().copied().unwrap_or(1.0);
            let mut best_train_acc = -1.0;
            for &c in &config.c_grid {
                let model = OneVsOneSvm::train(&train_kernel, &train_labels, &SvmConfig::with_c(c));
                let preds = model.predict_batch(&train_kernel);
                let acc = accuracy(&preds, &train_labels);
                if acc > best_train_acc {
                    best_train_acc = acc;
                    best_c = c;
                }
            }

            let model =
                OneVsOneSvm::train(&train_kernel, &train_labels, &SvmConfig::with_c(best_c));
            let preds = model.predict_batch(&test_kernel);
            fold_accuracies.push(accuracy(&preds, &test_labels));
        }
    }

    let summary = AccuracySummary::from_accuracies(&fold_accuracies);
    CrossValidationResult {
        fold_accuracies,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_linalg::Matrix;

    /// A kernel matrix with an obvious two-block structure so any sensible
    /// classifier reaches high accuracy.
    fn blocky_kernel(per_class: usize) -> (KernelMatrix, Vec<usize>) {
        let n = per_class * 2;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let same = (i < per_class) == (j < per_class);
                m[(i, j)] = if same { 1.0 } else { 0.1 };
            }
        }
        let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= per_class)).collect();
        (KernelMatrix::new(m).unwrap(), labels)
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let labels = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let folds = stratified_folds(&labels, 5, 1);
        assert_eq!(folds.len(), 10);
        for f in 0..5 {
            let members: Vec<usize> = (0..10).filter(|&i| folds[i] == f).collect();
            assert_eq!(members.len(), 2);
            let class0 = members.iter().filter(|&&i| labels[i] == 0).count();
            assert_eq!(class0, 1, "each fold should get one item per class");
        }
    }

    #[test]
    fn separable_kernel_reaches_high_accuracy() {
        let (kernel, labels) = blocky_kernel(10);
        let result = cross_validate_kernel(&kernel, &labels, &CrossValidationConfig::quick());
        assert!(
            result.summary.mean_percent > 90.0,
            "expected near-perfect accuracy, got {}",
            result.summary
        );
        assert!(!result.fold_accuracies.is_empty());
    }

    #[test]
    fn random_kernel_is_near_chance() {
        // A kernel carrying no class information: identity matrix.
        let n = 24;
        let kernel = KernelMatrix::new(Matrix::identity(n)).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let result = cross_validate_kernel(&kernel, &labels, &CrossValidationConfig::quick());
        assert!(
            result.summary.mean_percent < 80.0,
            "uninformative kernel should not look good: {}",
            result.summary
        );
    }

    #[test]
    fn repetitions_multiply_fold_count() {
        let (kernel, labels) = blocky_kernel(6);
        let config = CrossValidationConfig {
            folds: 3,
            repetitions: 4,
            c_grid: vec![1.0],
            seed: 7,
        };
        let result = cross_validate_kernel(&kernel, &labels, &config);
        assert_eq!(result.fold_accuracies.len(), 12);
        assert_eq!(result.summary.samples, 12);
    }

    #[test]
    fn fold_count_is_capped_by_dataset_size() {
        let (kernel, labels) = blocky_kernel(2); // only 4 items
        let config = CrossValidationConfig {
            folds: 10,
            repetitions: 1,
            c_grid: vec![1.0],
            seed: 0,
        };
        let result = cross_validate_kernel(&kernel, &labels, &config);
        assert!(!result.fold_accuracies.is_empty());
    }
}
