//! One-vs-one multiclass wrapper around the binary kernel SVM.
//!
//! Several of the paper's datasets have more than two classes (IMDB-MULTI,
//! GatorBait with 30, BAR31/BSPHERE31/GEOD31 with 20, PPIs with 5). The
//! standard C-SVM treatment — also what LIBSVM does internally — is
//! one-vs-one voting: train a binary SVM for every unordered pair of classes
//! and predict by majority vote.

use crate::svm::{KernelSvm, SvmConfig};
use haqjsk_linalg::Matrix;

/// A one-vs-one multiclass SVM over a precomputed kernel.
#[derive(Debug, Clone)]
pub struct OneVsOneSvm {
    /// Sorted list of distinct class labels seen at training time.
    classes: Vec<usize>,
    /// One binary machine per unordered class pair, with the indices (into
    /// the training set) that were used to train it.
    machines: Vec<PairwiseMachine>,
    /// Number of training items (for shape checks at prediction time).
    num_train: usize,
}

#[derive(Debug, Clone)]
struct PairwiseMachine {
    class_a: usize,
    class_b: usize,
    /// Indices into the full training set used by this machine.
    indices: Vec<usize>,
    svm: KernelSvm,
}

impl OneVsOneSvm {
    /// Trains one binary SVM per class pair on a precomputed training kernel
    /// (`n x n`) and integer class labels.
    pub fn train(kernel: &Matrix, labels: &[usize], config: &SvmConfig) -> Self {
        let n = labels.len();
        assert_eq!(kernel.rows(), n, "kernel rows must match label count");
        assert_eq!(kernel.cols(), n, "kernel must be square");
        let mut classes: Vec<usize> = labels.to_vec();
        classes.sort_unstable();
        classes.dedup();

        let mut machines = Vec::new();
        for a in 0..classes.len() {
            for b in (a + 1)..classes.len() {
                let (class_a, class_b) = (classes[a], classes[b]);
                let indices: Vec<usize> = (0..n)
                    .filter(|&i| labels[i] == class_a || labels[i] == class_b)
                    .collect();
                if indices.is_empty() {
                    continue;
                }
                let sub_labels: Vec<f64> = indices
                    .iter()
                    .map(|&i| if labels[i] == class_a { 1.0 } else { -1.0 })
                    .collect();
                let m = indices.len();
                let sub_kernel = Matrix::from_fn(m, m, |r, c| kernel[(indices[r], indices[c])]);
                let svm = KernelSvm::train(&sub_kernel, &sub_labels, config);
                machines.push(PairwiseMachine {
                    class_a,
                    class_b,
                    indices,
                    svm,
                });
            }
        }

        OneVsOneSvm {
            classes,
            machines,
            num_train: n,
        }
    }

    /// The distinct classes seen at training time.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Number of pairwise machines.
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Predicts the class of a test item given its kernel row against the
    /// full training set.
    pub fn predict(&self, kernel_row: &[f64]) -> usize {
        assert_eq!(
            kernel_row.len(),
            self.num_train,
            "kernel row must cover all training items"
        );
        if self.classes.len() == 1 {
            return self.classes[0];
        }
        let mut votes = vec![0usize; self.classes.len()];
        for machine in &self.machines {
            let sub_row: Vec<f64> = machine.indices.iter().map(|&i| kernel_row[i]).collect();
            let winner = if machine.svm.predict(&sub_row) > 0.0 {
                machine.class_a
            } else {
                machine.class_b
            };
            let slot = self
                .classes
                .iter()
                .position(|&c| c == winner)
                .expect("winner is a known class");
            votes[slot] += 1;
        }
        let best =
            haqjsk_linalg::vector::argmax(&votes.iter().map(|&v| v as f64).collect::<Vec<_>>())
                .expect("at least one class");
        self.classes[best]
    }

    /// Predicts a block of test items (`num_test x num_train` kernel block).
    pub fn predict_batch(&self, kernel_block: &Matrix) -> Vec<usize> {
        (0..kernel_block.rows())
            .map(|t| self.predict(kernel_block.row(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated clusters on a line, linear kernel.
    fn three_class_problem() -> (Matrix, Vec<usize>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            xs.push(0.0 + 0.05 * i as f64);
            labels.push(0);
            xs.push(5.0 + 0.05 * i as f64);
            labels.push(1);
            xs.push(10.0 + 0.05 * i as f64);
            labels.push(2);
        }
        let n = xs.len();
        // Gaussian kernel keeps the classes separable for an SVM on a line.
        let kernel = Matrix::from_fn(n, n, |i, j| {
            let d = xs[i] - xs[j];
            (-d * d / 2.0).exp()
        });
        (kernel, labels, xs)
    }

    #[test]
    fn three_classes_are_learned() {
        let (kernel, labels, _) = three_class_problem();
        let model = OneVsOneSvm::train(&kernel, &labels, &SvmConfig::with_c(10.0));
        assert_eq!(model.classes(), &[0, 1, 2]);
        assert_eq!(model.num_machines(), 3);
        let mut correct = 0;
        for i in 0..labels.len() {
            let row: Vec<f64> = (0..labels.len()).map(|j| kernel[(i, j)]).collect();
            if model.predict(&row) == labels[i] {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / labels.len() as f64 > 0.95,
            "correct = {correct}"
        );
    }

    #[test]
    fn unseen_items_vote_sensibly() {
        let (kernel, labels, xs) = three_class_problem();
        let model = OneVsOneSvm::train(&kernel, &labels, &SvmConfig::with_c(10.0));
        // Test points right in the middle of each cluster.
        for (x, expected) in [(0.2, 0usize), (5.2, 1), (10.2, 2)] {
            let row: Vec<f64> = xs
                .iter()
                .map(|&t| (-(x - t) * (x - t) / 2.0_f64).exp())
                .collect();
            assert_eq!(model.predict(&row), expected);
        }
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let kernel = Matrix::identity(4);
        let labels = vec![3, 3, 3, 3];
        let model = OneVsOneSvm::train(&kernel, &labels, &SvmConfig::default());
        assert_eq!(model.num_machines(), 0);
        assert_eq!(model.predict(&[0.0, 0.0, 0.0, 0.0]), 3);
    }

    #[test]
    fn binary_case_matches_direct_svm_behaviour() {
        let xs: Vec<f64> = vec![-2.0, -1.8, -1.5, 1.5, 1.8, 2.0];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let n = xs.len();
        let kernel = Matrix::from_fn(n, n, |i, j| xs[i] * xs[j]);
        let model = OneVsOneSvm::train(&kernel, &labels, &SvmConfig::with_c(10.0));
        assert_eq!(model.num_machines(), 1);
        let preds = model.predict_batch(&kernel);
        assert_eq!(preds, labels);
    }
}
