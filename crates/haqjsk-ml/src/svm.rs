//! Binary soft-margin C-SVM over a precomputed kernel, trained with a
//! simplified SMO (sequential minimal optimisation) solver.
//!
//! This replaces the LIBSVM dependency of the paper's experiments: the dual
//! problem, the KKT-violation heuristics and the decision function are the
//! same; only the working-set selection is the simplified random-second-index
//! variant, which is ample for the dataset sizes used here.

use haqjsk_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the binary kernel SVM.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Soft-margin regularisation constant `C`.
    pub c: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Maximum number of passes over the data without any multiplier update
    /// before the solver stops.
    pub max_passes: usize,
    /// Hard cap on optimisation sweeps.
    pub max_iterations: usize,
    /// RNG seed for the second-index selection.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            tolerance: 1e-3,
            max_passes: 8,
            max_iterations: 500,
            seed: 13,
        }
    }
}

impl SvmConfig {
    /// Configuration with a specific `C`, other values default.
    pub fn with_c(c: f64) -> Self {
        SvmConfig {
            c,
            ..Default::default()
        }
    }
}

/// A trained binary kernel SVM. Labels are `+1` / `-1`.
#[derive(Debug, Clone)]
pub struct KernelSvm {
    /// Lagrange multipliers of the training points.
    alphas: Vec<f64>,
    /// Bias term.
    bias: f64,
    /// Training labels (±1).
    labels: Vec<f64>,
    /// Indices (into the training set) of support vectors.
    support: Vec<usize>,
}

impl KernelSvm {
    /// Trains the SVM on a precomputed training-kernel matrix (`n x n`,
    /// `kernel[(i, j)]` = kernel between training items `i` and `j`) and ±1
    /// labels.
    pub fn train(kernel: &Matrix, labels: &[f64], config: &SvmConfig) -> Self {
        let n = labels.len();
        assert_eq!(kernel.rows(), n, "kernel rows must match label count");
        assert_eq!(kernel.cols(), n, "kernel must be square");
        assert!(
            labels.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be +1/-1"
        );

        let mut alphas = vec![0.0_f64; n];
        let mut bias = 0.0_f64;
        let mut rng = StdRng::seed_from_u64(config.seed);

        let decision = |alphas: &[f64], bias: f64, idx: usize| -> f64 {
            let mut acc = bias;
            for k in 0..n {
                if alphas[k] != 0.0 {
                    acc += alphas[k] * labels[k] * kernel[(k, idx)];
                }
            }
            acc
        };

        let mut passes = 0usize;
        let mut iterations = 0usize;
        while passes < config.max_passes && iterations < config.max_iterations {
            iterations += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = decision(&alphas, bias, i) - labels[i];
                let violates = (labels[i] * e_i < -config.tolerance && alphas[i] < config.c)
                    || (labels[i] * e_i > config.tolerance && alphas[i] > 0.0);
                if !violates {
                    continue;
                }
                // Pick a second index j != i at random (simplified SMO).
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = decision(&alphas, bias, j) - labels[j];

                let (alpha_i_old, alpha_j_old) = (alphas[i], alphas[j]);
                let (low, high) = if labels[i] != labels[j] {
                    (
                        (alphas[j] - alphas[i]).max(0.0),
                        (config.c + alphas[j] - alphas[i]).min(config.c),
                    )
                } else {
                    (
                        (alphas[i] + alphas[j] - config.c).max(0.0),
                        (alphas[i] + alphas[j]).min(config.c),
                    )
                };
                if (high - low).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * kernel[(i, j)] - kernel[(i, i)] - kernel[(j, j)];
                if eta >= 0.0 {
                    continue;
                }
                let mut alpha_j = alpha_j_old - labels[j] * (e_i - e_j) / eta;
                alpha_j = alpha_j.clamp(low, high);
                if (alpha_j - alpha_j_old).abs() < 1e-7 {
                    continue;
                }
                let alpha_i = alpha_i_old + labels[i] * labels[j] * (alpha_j_old - alpha_j);
                alphas[i] = alpha_i;
                alphas[j] = alpha_j;

                let b1 = bias
                    - e_i
                    - labels[i] * (alpha_i - alpha_i_old) * kernel[(i, i)]
                    - labels[j] * (alpha_j - alpha_j_old) * kernel[(i, j)];
                let b2 = bias
                    - e_j
                    - labels[i] * (alpha_i - alpha_i_old) * kernel[(i, j)]
                    - labels[j] * (alpha_j - alpha_j_old) * kernel[(j, j)];
                bias = if alpha_i > 0.0 && alpha_i < config.c {
                    b1
                } else if alpha_j > 0.0 && alpha_j < config.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        let support: Vec<usize> = (0..n).filter(|&i| alphas[i] > 1e-9).collect();
        KernelSvm {
            alphas,
            bias,
            labels: labels.to_vec(),
            support,
        }
    }

    /// Number of support vectors.
    pub fn num_support_vectors(&self) -> usize {
        self.support.len()
    }

    /// Decision value for a test item given its kernel row against the
    /// training set (`kernel_row[i]` = kernel between the test item and
    /// training item `i`).
    pub fn decision_function(&self, kernel_row: &[f64]) -> f64 {
        assert_eq!(
            kernel_row.len(),
            self.labels.len(),
            "kernel row must cover all training items"
        );
        let mut acc = self.bias;
        for &i in &self.support {
            acc += self.alphas[i] * self.labels[i] * kernel_row[i];
        }
        acc
    }

    /// Predicted ±1 label for a test item.
    pub fn predict(&self, kernel_row: &[f64]) -> f64 {
        if self.decision_function(kernel_row) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Predictions for a block of test items: `kernel_block` is
    /// `num_test x num_train`.
    pub fn predict_batch(&self, kernel_block: &Matrix) -> Vec<f64> {
        (0..kernel_block.rows())
            .map(|t| self.predict(kernel_block.row(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a linear kernel matrix from 2-D points.
    fn linear_kernel(points: &[[f64; 2]]) -> Matrix {
        let n = points.len();
        Matrix::from_fn(n, n, |i, j| {
            points[i][0] * points[j][0] + points[i][1] * points[j][1]
        })
    }

    fn separable_problem() -> (Vec<[f64; 2]>, Vec<f64>) {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            points.push([1.0 + 0.1 * i as f64, 2.0 + 0.05 * i as f64]);
            labels.push(1.0);
            points.push([-1.0 - 0.1 * i as f64, -2.0 - 0.05 * i as f64]);
            labels.push(-1.0);
        }
        (points, labels)
    }

    #[test]
    fn separable_data_is_classified_perfectly() {
        let (points, labels) = separable_problem();
        let kernel = linear_kernel(&points);
        let svm = KernelSvm::train(&kernel, &labels, &SvmConfig::with_c(10.0));
        for i in 0..points.len() {
            let row: Vec<f64> = (0..points.len()).map(|j| kernel[(i, j)]).collect();
            assert_eq!(svm.predict(&row), labels[i], "training point {i}");
        }
        assert!(svm.num_support_vectors() >= 2);
    }

    #[test]
    fn unseen_points_are_classified_by_sign() {
        let (points, labels) = separable_problem();
        let kernel = linear_kernel(&points);
        let svm = KernelSvm::train(&kernel, &labels, &SvmConfig::with_c(10.0));
        let test = [[2.0, 3.0], [-2.0, -3.0], [0.5, 1.0], [-0.5, -1.0]];
        let expected = [1.0, -1.0, 1.0, -1.0];
        for (t, &e) in test.iter().zip(expected.iter()) {
            let row: Vec<f64> = points.iter().map(|p| p[0] * t[0] + p[1] * t[1]).collect();
            assert_eq!(svm.predict(&row), e);
        }
    }

    #[test]
    fn predict_batch_matches_single_predictions() {
        let (points, labels) = separable_problem();
        let kernel = linear_kernel(&points);
        let svm = KernelSvm::train(&kernel, &labels, &SvmConfig::default());
        let block = kernel.submatrix(0, 0, 5, points.len()).unwrap();
        let batch = svm.predict_batch(&block);
        for (t, &pred) in batch.iter().enumerate() {
            assert_eq!(pred, svm.predict(block.row(t)));
        }
    }

    #[test]
    fn noisy_data_with_small_c_still_trains() {
        // Flip two labels: with a small C the solver must tolerate them.
        let (points, mut labels) = separable_problem();
        labels[0] = -1.0;
        labels[1] = 1.0;
        let kernel = linear_kernel(&points);
        let svm = KernelSvm::train(&kernel, &labels, &SvmConfig::with_c(0.1));
        let correct = (0..points.len())
            .filter(|&i| {
                let row: Vec<f64> = (0..points.len()).map(|j| kernel[(i, j)]).collect();
                svm.predict(&row) == labels[i]
            })
            .count();
        assert!(correct >= points.len() - 4, "correct = {correct}");
    }

    #[test]
    #[should_panic(expected = "labels must be +1/-1")]
    fn rejects_non_binary_labels() {
        let kernel = Matrix::identity(2);
        KernelSvm::train(&kernel, &[0.0, 1.0], &SvmConfig::default());
    }

    #[test]
    #[should_panic(expected = "kernel rows must match")]
    fn rejects_mismatched_kernel() {
        let kernel = Matrix::identity(3);
        KernelSvm::train(&kernel, &[1.0, -1.0], &SvmConfig::default());
    }
}
