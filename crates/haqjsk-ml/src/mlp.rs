//! Multi-layer perceptron over Weisfeiler–Lehman features.
//!
//! The "deep graph kernel" style baseline of Table V: graphs are embedded as
//! (L2-normalised) WL subtree feature histograms, and a one-hidden-layer MLP
//! with softmax output is trained on those embeddings. Like the GCN, its
//! expressiveness is bounded by the WL test, which is the property the paper
//! leans on when explaining why the CTQW-based kernels can outperform the
//! deep models.

use crate::nn::{one_hot, relu, relu_mask, seeded_rng, softmax, xavier_init, Adam};
use haqjsk_graph::Graph;
use haqjsk_kernels::WeisfeilerLehmanKernel;
use haqjsk_linalg::Matrix;
use std::collections::HashMap;

/// Hyper-parameters of the WL-feature MLP.
#[derive(Debug, Clone)]
pub struct WlMlpConfig {
    /// WL refinement rounds used for the feature extraction.
    pub wl_iterations: usize,
    /// Hidden-layer width.
    pub hidden_dim: usize,
    /// Training epochs (full batch).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WlMlpConfig {
    fn default() -> Self {
        WlMlpConfig {
            wl_iterations: 3,
            hidden_dim: 32,
            epochs: 150,
            learning_rate: 0.02,
            seed: 29,
        }
    }
}

/// A trained WL-feature MLP classifier.
#[derive(Debug, Clone)]
pub struct WlMlpClassifier {
    config: WlMlpConfig,
    num_classes: usize,
    /// Feature index shared between training and prediction: WL label ->
    /// dense dimension.
    feature_index: HashMap<u64, usize>,
    w_hidden: Matrix,
    b_hidden: Matrix,
    w_out: Matrix,
    b_out: Matrix,
}

impl WlMlpClassifier {
    /// Extracts the dense, L2-normalised WL feature vector of a graph using
    /// the classifier's feature index (unknown labels are ignored, exactly
    /// like unseen words in a bag-of-words model).
    fn featurize(&self, graph: &Graph) -> Vec<f64> {
        let wl = WeisfeilerLehmanKernel::new(self.config.wl_iterations);
        let sparse = wl.feature_maps(std::slice::from_ref(graph));
        let mut dense = vec![0.0; self.feature_index.len()];
        for &(key, count) in &sparse[0] {
            if let Some(&idx) = self.feature_index.get(&key) {
                dense[idx] = count;
            }
        }
        haqjsk_linalg::vector::normalize_l2(&mut dense);
        dense
    }

    fn forward(&self, features: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>) {
        let x = Matrix::from_vec(1, features.len(), features.to_vec()).expect("consistent length");
        let pre_hidden = &x.matmul(&self.w_hidden).expect("hidden shapes") + &self.b_hidden;
        let hidden = relu(&pre_hidden);
        let logits_m = &hidden.matmul(&self.w_out).expect("output shapes") + &self.b_out;
        let logits: Vec<f64> = logits_m.row(0).to_vec();
        let probabilities = softmax(&logits);
        (pre_hidden, hidden.row(0).to_vec(), probabilities)
    }

    /// Trains the MLP on a labelled graph dataset.
    pub fn train(graphs: &[Graph], labels: &[usize], config: WlMlpConfig) -> Self {
        assert_eq!(graphs.len(), labels.len(), "labels must match graphs");
        assert!(!graphs.is_empty(), "dataset must be non-empty");
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;

        // Build the shared WL feature index from the training set.
        let wl = WeisfeilerLehmanKernel::new(config.wl_iterations);
        let sparse = wl.feature_maps(graphs);
        let mut feature_index: HashMap<u64, usize> = HashMap::new();
        for map in &sparse {
            for &(key, _) in map {
                let next = feature_index.len();
                feature_index.entry(key).or_insert(next);
            }
        }
        let input_dim = feature_index.len().max(1);

        let mut rng = seeded_rng(config.seed);
        let mut model = WlMlpClassifier {
            w_hidden: xavier_init(input_dim, config.hidden_dim, &mut rng),
            b_hidden: Matrix::zeros(1, config.hidden_dim),
            w_out: xavier_init(config.hidden_dim, num_classes, &mut rng),
            b_out: Matrix::zeros(1, num_classes),
            num_classes,
            feature_index,
            config,
        };

        // Dense, normalised training features.
        let features: Vec<Vec<f64>> = sparse
            .iter()
            .map(|map| {
                let mut dense = vec![0.0; input_dim];
                for &(key, count) in map {
                    dense[model.feature_index[&key]] = count;
                }
                haqjsk_linalg::vector::normalize_l2(&mut dense);
                dense
            })
            .collect();

        let hidden_dim = model.config.hidden_dim;
        let lr = model.config.learning_rate;
        let mut adam_wh = Adam::new(input_dim, hidden_dim, lr);
        let mut adam_bh = Adam::new(1, hidden_dim, lr);
        let mut adam_wo = Adam::new(hidden_dim, num_classes, lr);
        let mut adam_bo = Adam::new(1, num_classes, lr);

        for _epoch in 0..model.config.epochs {
            let mut grad_wh = Matrix::zeros(input_dim, hidden_dim);
            let mut grad_bh = Matrix::zeros(1, hidden_dim);
            let mut grad_wo = Matrix::zeros(hidden_dim, num_classes);
            let mut grad_bo = Matrix::zeros(1, num_classes);

            for (x, &label) in features.iter().zip(labels.iter()) {
                let (pre_hidden, hidden, probabilities) = model.forward(x);
                let target = one_hot(label, num_classes);
                let dlogits: Vec<f64> = probabilities
                    .iter()
                    .zip(target.iter())
                    .map(|(p, y)| p - y)
                    .collect();
                for j in 0..hidden_dim {
                    for c in 0..num_classes {
                        grad_wo[(j, c)] += hidden[j] * dlogits[c];
                    }
                }
                for c in 0..num_classes {
                    grad_bo[(0, c)] += dlogits[c];
                }
                let mask = relu_mask(&pre_hidden);
                for j in 0..hidden_dim {
                    let dh: f64 = (0..num_classes)
                        .map(|c| dlogits[c] * model.w_out[(j, c)])
                        .sum();
                    let dpre = dh * mask[(0, j)];
                    if dpre == 0.0 {
                        continue;
                    }
                    grad_bh[(0, j)] += dpre;
                    for (f, &xf) in x.iter().enumerate() {
                        if xf != 0.0 {
                            grad_wh[(f, j)] += xf * dpre;
                        }
                    }
                }
            }

            let scale = 1.0 / graphs.len() as f64;
            adam_wh.update(&mut model.w_hidden, &grad_wh.scale(scale));
            adam_bh.update(&mut model.b_hidden, &grad_bh.scale(scale));
            adam_wo.update(&mut model.w_out, &grad_wo.scale(scale));
            adam_bo.update(&mut model.b_out, &grad_bo.scale(scale));
        }

        model
    }

    /// Class probabilities for a graph.
    pub fn predict_probabilities(&self, graph: &Graph) -> Vec<f64> {
        let features = self.featurize(graph);
        self.forward(&features).2
    }

    /// Predicted class of a graph.
    pub fn predict(&self, graph: &Graph) -> usize {
        haqjsk_linalg::vector::argmax(&self.predict_probabilities(graph))
            .expect("non-empty class set")
    }

    /// Accuracy over a labelled set of graphs.
    pub fn evaluate(&self, graphs: &[Graph], labels: &[usize]) -> f64 {
        let predictions: Vec<usize> = graphs.iter().map(|g| self.predict(g)).collect();
        crate::metrics::accuracy(&predictions, labels)
    }

    /// Number of distinct classes the model was trained on.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    fn toy_dataset() -> (Vec<Graph>, Vec<usize>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..8 {
            graphs.push(cycle_graph(7 + i % 3));
            labels.push(0);
            graphs.push(star_graph(7 + i % 3));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn quick_config() -> WlMlpConfig {
        WlMlpConfig {
            hidden_dim: 16,
            epochs: 120,
            ..Default::default()
        }
    }

    #[test]
    fn separates_structural_classes() {
        let (graphs, labels) = toy_dataset();
        let model = WlMlpClassifier::train(&graphs, &labels, quick_config());
        assert_eq!(model.num_classes(), 2);
        let acc = model.evaluate(&graphs, &labels);
        assert!(acc > 0.9, "training accuracy too low: {acc}");
    }

    #[test]
    fn generalises_to_unseen_graphs_of_the_same_families() {
        let (graphs, labels) = toy_dataset();
        let model = WlMlpClassifier::train(&graphs, &labels, quick_config());
        assert_eq!(model.predict(&cycle_graph(11)), 0);
        assert_eq!(model.predict(&star_graph(11)), 1);
    }

    #[test]
    fn unseen_wl_labels_are_ignored_gracefully() {
        let (graphs, labels) = toy_dataset();
        let model = WlMlpClassifier::train(&graphs, &labels, quick_config());
        // A path graph contains WL labels never seen in training; prediction
        // must still return a valid class.
        let p = model.predict_probabilities(&path_graph(9));
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_dataset() {
        WlMlpClassifier::train(&[], &[], WlMlpConfig::default());
    }
}
