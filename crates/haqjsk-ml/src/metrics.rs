//! Classification metrics: accuracy, confusion matrices and the mean ±
//! standard-error aggregation the paper reports in its tables.

use haqjsk_linalg::stats;

/// Fraction of predictions equal to the true labels; zero for empty input.
pub fn accuracy(predictions: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(truth.iter())
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix indexed by `[true class][predicted class]` over the
/// classes `0..num_classes`.
pub fn confusion_matrix(
    predictions: &[usize],
    truth: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), truth.len(), "length mismatch");
    let mut matrix = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &t) in predictions.iter().zip(truth.iter()) {
        assert!(p < num_classes && t < num_classes, "class out of range");
        matrix[t][p] += 1;
    }
    matrix
}

/// Aggregated result of repeated cross-validation: mean accuracy and its
/// standard error, expressed in percent as the paper's tables do.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracySummary {
    /// Mean accuracy in percent.
    pub mean_percent: f64,
    /// Standard error of the mean in percent.
    pub std_error_percent: f64,
    /// Number of accuracy samples aggregated.
    pub samples: usize,
}

impl AccuracySummary {
    /// Aggregates raw accuracies (fractions in `[0, 1]`).
    pub fn from_accuracies(accuracies: &[f64]) -> Self {
        let percents: Vec<f64> = accuracies.iter().map(|a| a * 100.0).collect();
        AccuracySummary {
            mean_percent: stats::mean(&percents),
            std_error_percent: stats::standard_error(&percents),
            samples: accuracies.len(),
        }
    }
}

impl std::fmt::Display for AccuracySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2}",
            self.mean_percent, self.std_error_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 0, 1, 1], &[1, 0, 0, 1]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[2, 2], &[2, 2]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 2, 0], &[0, 1, 2, 2, 1], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[1][0], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn summary_mean_and_error() {
        let s = AccuracySummary::from_accuracies(&[0.8, 0.9, 1.0, 0.7]);
        assert!((s.mean_percent - 85.0).abs() < 1e-9);
        assert!(s.std_error_percent > 0.0);
        assert_eq!(s.samples, 4);
        let text = format!("{s}");
        assert!(text.contains("85.00"));
        // Constant accuracies have zero standard error.
        let c = AccuracySummary::from_accuracies(&[0.5, 0.5, 0.5]);
        assert_eq!(c.std_error_percent, 0.0);
    }
}
