//! # haqjsk-ml
//!
//! Machine-learning harness for the HAQJSK reproduction.
//!
//! The paper's evaluation protocol (Sec. IV) is: compute a kernel matrix,
//! feed it to a C-SVM, run 10-fold cross-validation, repeat 10 times, report
//! mean accuracy ± standard error. This crate provides every piece of that
//! protocol from scratch:
//!
//! * a binary soft-margin C-SVM over precomputed kernels, trained with a
//!   simplified SMO solver ([`svm`]),
//! * one-vs-one multiclass voting ([`multiclass`]),
//! * stratified k-fold cross-validation with an inner grid search over the
//!   SVM regularisation constant ([`cross_validation`]),
//! * accuracy / confusion-matrix metrics ([`metrics`]),
//! * the graph deep-learning stand-ins used by the Table V comparison: a
//!   compact graph convolutional network ([`gcn`]) and a multi-layer
//!   perceptron over Weisfeiler–Lehman features ([`mlp`]), both built on the
//!   small dense neural-network layer in [`nn`].

pub mod cross_validation;
pub mod gcn;
pub mod knn;
pub mod metrics;
pub mod mlp;
pub mod multiclass;
pub mod nn;
pub mod svm;

pub use cross_validation::{cross_validate_kernel, CrossValidationConfig, CrossValidationResult};
pub use knn::KernelKnn;
pub use metrics::{accuracy, confusion_matrix};
pub use multiclass::OneVsOneSvm;
pub use svm::{KernelSvm, SvmConfig};
