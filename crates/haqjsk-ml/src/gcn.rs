//! A compact graph convolutional network (GCN) graph classifier.
//!
//! This is the reproduction's stand-in for the message-passing deep-learning
//! baselines of Table V (DGCNN, PSGCNN, DCNN): a single symmetric-normalised
//! graph convolution with ReLU, mean pooling over vertices, and a softmax
//! output layer, trained with Adam on full batches. Like the published
//! models it is bounded by 1-WL expressiveness and propagates information
//! only between adjacent vertices, which is precisely the comparison axis the
//! paper draws against the CTQW-based kernels.

use crate::nn::{one_hot, relu, relu_mask, seeded_rng, softmax, xavier_init, Adam};
use haqjsk_graph::Graph;
use haqjsk_linalg::Matrix;

/// Hyper-parameters of the GCN classifier.
#[derive(Debug, Clone)]
pub struct GcnConfig {
    /// Hidden dimension of the graph convolution.
    pub hidden_dim: usize,
    /// Maximum degree used for the one-hot degree input features (degrees
    /// above the cap share the last bucket).
    pub max_degree_feature: usize,
    /// Number of full-batch training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed for weight initialisation.
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig {
            hidden_dim: 16,
            max_degree_feature: 10,
            epochs: 120,
            learning_rate: 0.02,
            seed: 17,
        }
    }
}

/// A trained GCN graph classifier.
#[derive(Debug, Clone)]
pub struct GcnClassifier {
    config: GcnConfig,
    num_classes: usize,
    /// Graph-convolution weights (`input_dim x hidden_dim`).
    w_conv: Matrix,
    /// Readout weights (`hidden_dim x num_classes`).
    w_out: Matrix,
    /// Readout bias (`1 x num_classes`).
    b_out: Matrix,
}

/// Precomputed per-graph tensors reused across epochs.
struct PreparedGraph {
    /// Symmetric-normalised adjacency with self loops, `Â`.
    norm_adjacency: Matrix,
    /// One-hot degree features `X` (`n x input_dim`).
    features: Matrix,
}

impl GcnClassifier {
    fn input_dim(config: &GcnConfig) -> usize {
        config.max_degree_feature + 1
    }

    fn prepare(graph: &Graph, config: &GcnConfig) -> PreparedGraph {
        let n = graph.num_vertices();
        // Â = D^{-1/2} (A + I) D^{-1/2}
        let mut a_hat = graph.adjacency_matrix();
        for i in 0..n {
            a_hat[(i, i)] += 1.0;
        }
        let degrees: Vec<f64> = (0..n).map(|i| a_hat.row(i).iter().sum::<f64>()).collect();
        let mut norm = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if a_hat[(i, j)] != 0.0 {
                    norm[(i, j)] = a_hat[(i, j)] / (degrees[i].sqrt() * degrees[j].sqrt());
                }
            }
        }
        // One-hot (capped) degree features.
        let dim = Self::input_dim(config);
        let mut features = Matrix::zeros(n, dim);
        for v in 0..n {
            let d = graph.degree(v).min(config.max_degree_feature);
            features[(v, d)] = 1.0;
        }
        PreparedGraph {
            norm_adjacency: norm,
            features,
        }
    }

    /// Forward pass; returns (pre-activation, hidden activations, pooled
    /// readout, class probabilities).
    fn forward(&self, prepared: &PreparedGraph) -> (Matrix, Matrix, Vec<f64>, Vec<f64>) {
        let propagated = prepared
            .norm_adjacency
            .matmul(&prepared.features)
            .expect("shapes fixed at preparation");
        let pre = propagated.matmul(&self.w_conv).expect("conv shapes");
        let hidden = relu(&pre);
        // Mean pooling over vertices.
        let n = hidden.rows().max(1);
        let pooled: Vec<f64> = (0..hidden.cols())
            .map(|j| (0..hidden.rows()).map(|i| hidden[(i, j)]).sum::<f64>() / n as f64)
            .collect();
        let mut logits = vec![0.0; self.num_classes];
        for (c, logit) in logits.iter_mut().enumerate() {
            let mut acc = self.b_out[(0, c)];
            for (j, &p) in pooled.iter().enumerate() {
                acc += p * self.w_out[(j, c)];
            }
            *logit = acc;
        }
        let probabilities = softmax(&logits);
        (pre, hidden, pooled, probabilities)
    }

    /// Trains a GCN on a labelled graph dataset. Class labels must lie in
    /// `0..num_classes`.
    pub fn train(graphs: &[Graph], labels: &[usize], config: GcnConfig) -> Self {
        assert_eq!(graphs.len(), labels.len(), "labels must match graphs");
        assert!(!graphs.is_empty(), "dataset must be non-empty");
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let input_dim = Self::input_dim(&config);
        let mut rng = seeded_rng(config.seed);

        let mut model = GcnClassifier {
            w_conv: xavier_init(input_dim, config.hidden_dim, &mut rng),
            w_out: xavier_init(config.hidden_dim, num_classes, &mut rng),
            b_out: Matrix::zeros(1, num_classes),
            num_classes,
            config,
        };

        let prepared: Vec<PreparedGraph> = graphs
            .iter()
            .map(|g| Self::prepare(g, &model.config))
            .collect();

        let mut adam_conv = Adam::new(
            input_dim,
            model.config.hidden_dim,
            model.config.learning_rate,
        );
        let mut adam_out = Adam::new(
            model.config.hidden_dim,
            num_classes,
            model.config.learning_rate,
        );
        let mut adam_bias = Adam::new(1, num_classes, model.config.learning_rate);

        for _epoch in 0..model.config.epochs {
            let mut grad_conv = Matrix::zeros(input_dim, model.config.hidden_dim);
            let mut grad_out = Matrix::zeros(model.config.hidden_dim, num_classes);
            let mut grad_bias = Matrix::zeros(1, num_classes);

            for (prep, &label) in prepared.iter().zip(labels.iter()) {
                let (pre, _hidden, pooled, probabilities) = model.forward(prep);
                let target = one_hot(label, num_classes);
                // d loss / d logits = p - y
                let dlogits: Vec<f64> = probabilities
                    .iter()
                    .zip(target.iter())
                    .map(|(p, y)| p - y)
                    .collect();
                // Output layer gradients.
                for j in 0..model.config.hidden_dim {
                    for c in 0..num_classes {
                        grad_out[(j, c)] += pooled[j] * dlogits[c];
                    }
                }
                for c in 0..num_classes {
                    grad_bias[(0, c)] += dlogits[c];
                }
                // Back through mean pooling and ReLU into the conv weights.
                let n = prep.features.rows().max(1) as f64;
                let dpooled: Vec<f64> = (0..model.config.hidden_dim)
                    .map(|j| {
                        (0..num_classes)
                            .map(|c| dlogits[c] * model.w_out[(j, c)])
                            .sum::<f64>()
                    })
                    .collect();
                let mask = relu_mask(&pre);
                // dHidden[i][j] = dpooled[j] / n ; dPre = dHidden * mask
                // grad_conv = (Â X)^T dPre
                let propagated = prep
                    .norm_adjacency
                    .matmul(&prep.features)
                    .expect("shapes fixed");
                for i in 0..propagated.rows() {
                    for j in 0..model.config.hidden_dim {
                        let dpre = dpooled[j] / n * mask[(i, j)];
                        if dpre == 0.0 {
                            continue;
                        }
                        for f in 0..input_dim {
                            grad_conv[(f, j)] += propagated[(i, f)] * dpre;
                        }
                    }
                }
            }

            let scale = 1.0 / graphs.len() as f64;
            adam_conv.update(&mut model.w_conv, &grad_conv.scale(scale));
            adam_out.update(&mut model.w_out, &grad_out.scale(scale));
            adam_bias.update(&mut model.b_out, &grad_bias.scale(scale));
        }

        model
    }

    /// Class probabilities for a graph.
    pub fn predict_probabilities(&self, graph: &Graph) -> Vec<f64> {
        let prepared = Self::prepare(graph, &self.config);
        self.forward(&prepared).3
    }

    /// Predicted class of a graph.
    pub fn predict(&self, graph: &Graph) -> usize {
        let probabilities = self.predict_probabilities(graph);
        haqjsk_linalg::vector::argmax(&probabilities).expect("non-empty class set")
    }

    /// Accuracy over a labelled set of graphs.
    pub fn evaluate(&self, graphs: &[Graph], labels: &[usize]) -> f64 {
        let predictions: Vec<usize> = graphs.iter().map(|g| self.predict(g)).collect();
        crate::metrics::accuracy(&predictions, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{barabasi_albert, cycle_graph, erdos_renyi, star_graph};

    /// Two structurally distinct classes: sparse cycles vs dense hubs.
    fn toy_dataset() -> (Vec<Graph>, Vec<usize>) {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            graphs.push(cycle_graph(8 + i % 3));
            labels.push(0);
            graphs.push(star_graph(8 + i % 3));
            labels.push(1);
        }
        (graphs, labels)
    }

    fn quick_config() -> GcnConfig {
        GcnConfig {
            hidden_dim: 8,
            epochs: 80,
            ..Default::default()
        }
    }

    #[test]
    fn learns_to_separate_cycles_from_stars() {
        let (graphs, labels) = toy_dataset();
        let model = GcnClassifier::train(&graphs, &labels, quick_config());
        let acc = model.evaluate(&graphs, &labels);
        assert!(acc > 0.9, "training accuracy too low: {acc}");
    }

    #[test]
    fn generalises_to_unseen_sizes() {
        let (graphs, labels) = toy_dataset();
        let model = GcnClassifier::train(&graphs, &labels, quick_config());
        assert_eq!(model.predict(&cycle_graph(12)), 0);
        assert_eq!(model.predict(&star_graph(12)), 1);
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let (graphs, labels) = toy_dataset();
        let model = GcnClassifier::train(&graphs, &labels, quick_config());
        let p = model.predict_probabilities(&erdos_renyi(10, 0.3, 5));
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn handles_more_than_two_classes() {
        let mut graphs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..6 {
            graphs.push(cycle_graph(7 + i % 2));
            labels.push(0);
            graphs.push(star_graph(7 + i % 2));
            labels.push(1);
            graphs.push(barabasi_albert(8 + i % 2, 2, i as u64));
            labels.push(2);
        }
        let model = GcnClassifier::train(&graphs, &labels, quick_config());
        let acc = model.evaluate(&graphs, &labels);
        assert!(acc > 0.6, "three-class training accuracy too low: {acc}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_is_rejected() {
        GcnClassifier::train(&[], &[], GcnConfig::default());
    }
}
