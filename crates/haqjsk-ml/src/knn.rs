//! k-nearest-neighbour classification in kernel space.
//!
//! A lightweight alternative to the C-SVM for sanity-checking kernels: items
//! are classified by majority vote among their `k` nearest training items
//! under the kernel-induced distance `d(i,j)² = K(i,i) + K(j,j) − 2K(i,j)`.
//! Because it uses the same precomputed kernel matrices as the SVM harness,
//! it slots directly into the cross-validation protocol and provides a quick
//! "is there any signal in this kernel at all" probe.

use haqjsk_linalg::Matrix;

/// A fitted kernel kNN classifier (it simply remembers the training labels
/// and self-similarities).
#[derive(Debug, Clone)]
pub struct KernelKnn {
    /// Number of neighbours consulted.
    pub k: usize,
    labels: Vec<usize>,
    /// `K(i, i)` for every training item.
    self_similarity: Vec<f64>,
}

impl KernelKnn {
    /// Fits the classifier on a precomputed training kernel matrix and class
    /// labels.
    pub fn fit(train_kernel: &Matrix, labels: &[usize], k: usize) -> Self {
        assert_eq!(train_kernel.rows(), labels.len(), "kernel size mismatch");
        assert_eq!(train_kernel.cols(), labels.len(), "kernel must be square");
        assert!(k >= 1, "k must be at least 1");
        let self_similarity = (0..labels.len()).map(|i| train_kernel[(i, i)]).collect();
        KernelKnn {
            k,
            labels: labels.to_vec(),
            self_similarity,
        }
    }

    /// Number of training items.
    pub fn num_train(&self) -> usize {
        self.labels.len()
    }

    /// Predicts the class of one test item from its kernel row against the
    /// training items and its own self-similarity `K(t, t)`.
    pub fn predict(&self, kernel_row: &[f64], test_self_similarity: f64) -> usize {
        assert_eq!(
            kernel_row.len(),
            self.labels.len(),
            "kernel row length mismatch"
        );
        // Collect (distance², index), take the k smallest.
        let mut distances: Vec<(f64, usize)> = kernel_row
            .iter()
            .enumerate()
            .map(|(i, &k_ti)| {
                let d2 = (test_self_similarity + self.self_similarity[i] - 2.0 * k_ti).max(0.0);
                (d2, i)
            })
            .collect();
        distances.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let k = self.k.min(distances.len());
        let mut votes: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        for &(_, idx) in distances.iter().take(k) {
            *votes.entry(self.labels[idx]).or_insert(0) += 1;
        }
        // Majority vote; ties break towards the nearest neighbour's class.
        let max_votes = votes.values().copied().max().unwrap_or(0);
        for &(_, idx) in distances.iter().take(k) {
            if votes[&self.labels[idx]] == max_votes {
                return self.labels[idx];
            }
        }
        self.labels[distances[0].1]
    }

    /// Predicts a block of test items. `kernel_block` is
    /// `num_test x num_train`; `test_self_similarities[t] = K(t, t)`.
    pub fn predict_batch(
        &self,
        kernel_block: &Matrix,
        test_self_similarities: &[f64],
    ) -> Vec<usize> {
        assert_eq!(
            kernel_block.rows(),
            test_self_similarities.len(),
            "one self-similarity per test item required"
        );
        (0..kernel_block.rows())
            .map(|t| self.predict(kernel_block.row(t), test_self_similarities[t]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gaussian kernel over scalar points.
    fn gaussian_kernel(xs: &[f64]) -> Matrix {
        let n = xs.len();
        Matrix::from_fn(n, n, |i, j| {
            let d = xs[i] - xs[j];
            (-d * d / 2.0).exp()
        })
    }

    fn two_cluster_problem() -> (Vec<f64>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..6 {
            xs.push(0.0 + 0.1 * i as f64);
            labels.push(0);
            xs.push(10.0 + 0.1 * i as f64);
            labels.push(1);
        }
        (xs, labels)
    }

    #[test]
    fn classifies_training_points_correctly() {
        let (xs, labels) = two_cluster_problem();
        let kernel = gaussian_kernel(&xs);
        let knn = KernelKnn::fit(&kernel, &labels, 3);
        assert_eq!(knn.num_train(), 12);
        for i in 0..xs.len() {
            let row: Vec<f64> = (0..xs.len()).map(|j| kernel[(i, j)]).collect();
            assert_eq!(knn.predict(&row, kernel[(i, i)]), labels[i]);
        }
    }

    #[test]
    fn classifies_unseen_points_by_cluster() {
        let (xs, labels) = two_cluster_problem();
        let kernel = gaussian_kernel(&xs);
        let knn = KernelKnn::fit(&kernel, &labels, 3);
        for (test_x, expected) in [(0.3, 0usize), (10.3, 1), (-1.0, 0), (12.0, 1)] {
            let row: Vec<f64> = xs
                .iter()
                .map(|&x| (-(test_x - x) * (test_x - x) / 2.0_f64).exp())
                .collect();
            assert_eq!(knn.predict(&row, 1.0), expected, "x = {test_x}");
        }
    }

    #[test]
    fn predict_batch_matches_single_calls() {
        let (xs, labels) = two_cluster_problem();
        let kernel = gaussian_kernel(&xs);
        let knn = KernelKnn::fit(&kernel, &labels, 1);
        let block = kernel.submatrix(0, 0, 4, xs.len()).unwrap();
        let selfs: Vec<f64> = (0..4).map(|i| kernel[(i, i)]).collect();
        let batch = knn.predict_batch(&block, &selfs);
        for (t, &pred) in batch.iter().enumerate() {
            assert_eq!(pred, knn.predict(block.row(t), selfs[t]));
        }
    }

    #[test]
    fn k_larger_than_training_set_still_works() {
        let xs = vec![0.0, 0.1, 10.0];
        let labels = vec![0, 0, 1];
        let kernel = gaussian_kernel(&xs);
        let knn = KernelKnn::fit(&kernel, &labels, 50);
        // Majority of all points is class 0.
        let row: Vec<f64> = xs
            .iter()
            .map(|&x| (-(5.0 - x) * (5.0 - x) / 2.0_f64).exp())
            .collect();
        assert_eq!(knn.predict(&row, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_is_rejected() {
        let kernel = Matrix::identity(2);
        KernelKnn::fit(&kernel, &[0, 1], 0);
    }

    #[test]
    #[should_panic(expected = "kernel size mismatch")]
    fn mismatched_labels_rejected() {
        let kernel = Matrix::identity(3);
        KernelKnn::fit(&kernel, &[0, 1], 1);
    }
}
