//! Property tests for the sharded, budgeted feature cache: under any
//! interleaving of `get_or_compute` / `get` / eviction pressure,
//!
//! * the exactly-once guarantee holds per **resident** key — a key whose
//!   value is resident never recomputes,
//! * LRU order is respected — the resident set always equals a reference
//!   model that evicts strictly least-recently-used-first,
//! * per-shard budgets are never exceeded after an insert completes.
//!
//! The deterministic single-threaded properties drive a shadow model; a
//! separate multi-threaded stress test checks the invariants that survive
//! nondeterminism (bounded residency, no lost values, no deadlock).

use haqjsk_engine::{CacheConfig, CacheWeight, FeatureCache, GraphKey};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A test value with an arbitrary advertised weight.
#[derive(Debug, Clone, PartialEq)]
struct Blob {
    payload: u64,
    advertised: usize,
}

impl CacheWeight for Blob {
    fn weight(&self) -> usize {
        self.advertised
    }
}

/// Reference single-threaded model of one cache: per-shard LRU queues
/// (front = most recent) with the same floor-divided budget policy.
struct ModelCache {
    shards: Vec<ModelShard>,
    per_shard_budget: usize,
}

struct ModelShard {
    /// Keys most-recent-first, with their weights.
    lru: Vec<(GraphKey, usize)>,
    bytes: usize,
    evictions: usize,
}

impl ModelCache {
    fn new(shards: usize, budget: usize) -> ModelCache {
        ModelCache {
            shards: (0..shards)
                .map(|_| ModelShard {
                    lru: Vec::new(),
                    bytes: 0,
                    evictions: 0,
                })
                .collect(),
            per_shard_budget: budget / shards,
        }
    }

    fn shard_of(&self, key: GraphKey) -> usize {
        let high = (key.0 >> 64) as u64;
        ((high as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// Returns true when the key was resident (a hit).
    fn access(&mut self, key: GraphKey, weight: usize) -> bool {
        let budget = self.per_shard_budget;
        let shard_idx = self.shard_of(key);
        let shard = &mut self.shards[shard_idx];
        if let Some(pos) = shard.lru.iter().position(|&(k, _)| k == key) {
            let entry = shard.lru.remove(pos);
            shard.lru.insert(0, entry);
            return true;
        }
        let weight = weight.max(1);
        shard.lru.insert(0, (key, weight));
        shard.bytes += weight;
        while shard.bytes > budget {
            let (_, w) = shard.lru.pop().expect("bytes > 0 implies entries");
            shard.bytes -= w;
            shard.evictions += 1;
        }
        false
    }

    fn resident(&self, key: GraphKey) -> bool {
        let shard = &self.shards[self.shard_of(key)];
        shard.lru.iter().any(|&(k, _)| k == key)
    }
}

/// Spread small key indices over the full upper-64-bit range so every shard
/// receives traffic.
fn spread_key(i: u64) -> GraphKey {
    GraphKey(((i.wrapping_mul(0x9E3779B97F4A7C15)) as u128) << 64 | i as u128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The real cache and the shadow model agree on hits, residency, LRU
    /// eviction order and byte accounting for every op sequence, and the
    /// per-shard budget invariant holds after every insert.
    #[test]
    fn eviction_respects_lru_budget_and_exactly_once(
        shards in 1usize..5,
        budget in 8usize..160,
        ops in proptest::collection::vec((0u64..24, 1usize..48), 1..120),
    ) {
        let cache: FeatureCache<Blob> = FeatureCache::with_config(CacheConfig {
            shards,
            budget_bytes: Some(budget),
            ..CacheConfig::default()
        });
        let mut model = ModelCache::new(cache.shards(), budget);
        let mut computes: HashMap<GraphKey, usize> = HashMap::new();

        for (case, &(key_index, weight)) in ops.iter().enumerate() {
            let key = spread_key(key_index);
            let was_resident = cache.peek(key).is_some();
            prop_assert_eq!(
                was_resident, model.resident(key),
                "residency diverged before op {} (key {})", case, key_index
            );

            let mut computed = false;
            let value = cache.get_or_compute(key, || {
                computed = true;
                *computes.entry(key).or_insert(0) += 1;
                Blob { payload: key_index, advertised: weight }
            });
            prop_assert_eq!(value.payload, key_index);

            // Exactly-once per resident key: a resident key never
            // recomputes; a non-resident key always does (single thread).
            prop_assert_eq!(
                computed, !was_resident,
                "op {}: compute ran {} for a key that was{} resident",
                case, computed, if was_resident { "" } else { " not" }
            );

            let model_hit = model.access(key, weight);
            prop_assert_eq!(model_hit, was_resident);

            // Budgets never exceeded after the insert finished.
            for (s, shard) in cache.shard_stats().iter().enumerate() {
                prop_assert!(
                    shard.resident_bytes <= shard.budget_bytes.unwrap(),
                    "op {}: shard {} holds {} bytes over budget {:?}",
                    case, s, shard.resident_bytes, shard.budget_bytes
                );
            }

            // The resident sets agree key by key (this is exactly the LRU
            // order check: any deviation from least-recently-used-first
            // eviction makes the sets diverge for some op sequence).
            for probe in 0u64..24 {
                let probe_key = spread_key(probe);
                prop_assert_eq!(
                    cache.peek(probe_key).is_some(),
                    model.resident(probe_key),
                    "op {}: resident set diverged at key {}", case, probe
                );
            }
        }

        // Counter cross-checks: model and cache agree on evictions; every
        // compute was for a non-resident key at its time.
        let stats = cache.stats();
        let model_evictions: usize = model.shards.iter().map(|s| s.evictions).sum();
        prop_assert_eq!(stats.evictions, model_evictions);
        let model_bytes: usize = model.shards.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(stats.resident_bytes, model_bytes);
        prop_assert_eq!(stats.misses, computes.values().sum::<usize>());
    }
}

/// Multithreaded stress: concurrent get_or_compute over an overlapping key
/// set with a tight budget must terminate, keep every shard within budget
/// at quiescence, and never return a wrong value. Exactly-once is asserted
/// in its residency-scoped form: recomputes require an eviction in between,
/// so computes never exceed evictions + resident entries.
#[test]
fn concurrent_eviction_preserves_value_integrity_and_budget() {
    let shards = 4;
    let budget = 64 * 48;
    let cache: Arc<FeatureCache<Blob>> = Arc::new(FeatureCache::with_config(CacheConfig {
        shards,
        budget_bytes: Some(budget),
        ..CacheConfig::default()
    }));
    let computes = Arc::new(AtomicUsize::new(0));

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            std::thread::spawn(move || {
                for round in 0..300u64 {
                    let key_index = (round * 7 + t * 13) % 48;
                    let key = spread_key(key_index);
                    let value = cache.get_or_compute(key, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        Blob {
                            payload: key_index,
                            advertised: 40 + (key_index as usize % 16),
                        }
                    });
                    assert_eq!(value.payload, key_index, "wrong value for key");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = cache.stats();
    for shard in cache.shard_stats() {
        assert!(shard.resident_bytes <= shard.budget_bytes.unwrap());
    }
    // Residency-scoped exactly-once: every compute beyond the first for a
    // key must have been preceded by that key's eviction.
    assert!(
        computes.load(Ordering::SeqCst) <= stats.evictions + stats.entries,
        "{} computes but only {} evictions + {} residents",
        computes.load(Ordering::SeqCst),
        stats.evictions,
        stats.entries
    );
    assert_eq!(stats.misses, computes.load(Ordering::SeqCst));
    assert_eq!(stats.hits + stats.misses, 8 * 300);
}
