//! Integration tests for the engine's acceptance criteria:
//!
//! * the tiled parallel Gram matrix is byte-identical to the serial path on
//!   a ≥30-graph synthetic dataset,
//! * each graph's CTQW density matrix is computed **exactly once** for the
//!   whole Gram computation (instrumented through the feature cache),
//! * incremental Gram extension matches full recomputation exactly.

use haqjsk_engine::{graph_key, BackendKind, Engine, FeatureCache};
use haqjsk_graph::generators::{barabasi_albert, cycle_graph, erdos_renyi, star_graph};
use haqjsk_graph::Graph;
use haqjsk_quantum::{ctqw_density_infinite, qjsd_padded, DensityMatrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A 32-graph synthetic dataset mixing the generator families.
fn synthetic_dataset() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(5 + i));
        graphs.push(star_graph(5 + i));
        graphs.push(erdos_renyi(6 + i, 0.35, i as u64));
        graphs.push(barabasi_albert(7 + i, 2, 100 + i as u64));
    }
    assert!(graphs.len() >= 30);
    graphs
}

/// The QJSK-style pair kernel used by the tests: `exp(-D_QJS)` of the
/// cached CTQW densities.
fn pair_kernel(densities: &[Arc<DensityMatrix>], i: usize, j: usize) -> f64 {
    let d = qjsd_padded(&densities[i], &densities[j]).expect("valid densities");
    (-d).exp()
}

#[test]
fn tiled_parallel_gram_is_byte_identical_to_serial_with_exactly_once_features() {
    let graphs = synthetic_dataset();
    let n = graphs.len();
    let engine = Engine::with_tile(4, 5); // deliberately off-by-one vs n

    // Extract every graph's density matrix through the instrumented cache,
    // in parallel, counting how often the expensive compute actually runs.
    let cache: FeatureCache<DensityMatrix> = FeatureCache::new();
    let compute_calls = AtomicUsize::new(0);
    let densities: Vec<Arc<DensityMatrix>> = engine.map(n, |i| {
        cache.get_or_compute(graph_key(&graphs[i]), || {
            compute_calls.fetch_add(1, Ordering::SeqCst);
            ctqw_density_infinite(&graphs[i]).expect("non-empty graph")
        })
    });

    // Exactly once per graph: the dataset has no duplicate structures, so
    // every distinct graph triggered one compute and the cache holds them.
    assert_eq!(compute_calls.load(Ordering::SeqCst), n);
    let stats = cache.stats();
    assert_eq!(stats.misses, n);
    assert_eq!(stats.entries, n);

    // The n(n+1)/2 pair evaluations only read cached state; the parallel
    // tiled schedule must reproduce the serial result bit for bit.
    let parallel = engine.gram(n, |i, j| pair_kernel(&densities, i, j));
    let serial = Engine::gram_serial(n, |i, j| pair_kernel(&densities, i, j));
    assert_eq!(parallel, serial, "tiled schedule must not change any bit");

    // And no pair evaluation recomputed a density: the counters only moved
    // through cache hits.
    let after = cache.stats();
    assert_eq!(after.misses, n, "pair loop must never recompute a density");

    // Re-requesting every graph is now pure cache hits.
    for g in &graphs {
        let hit = cache.get_or_compute(graph_key(g), || unreachable!("must be cached"));
        assert!(hit.dim() > 0);
    }
    assert_eq!(cache.stats().hits, after.hits + n);
}

#[test]
fn incremental_extension_matches_full_recomputation_on_graph_features() {
    let graphs = synthetic_dataset();
    let n = graphs.len();
    let split = 23;
    let engine = Engine::with_tile(3, 4);

    let cache: FeatureCache<DensityMatrix> = FeatureCache::new();
    let densities: Vec<Arc<DensityMatrix>> = engine.map(n, |i| {
        cache.get_or_compute(graph_key(&graphs[i]), || {
            ctqw_density_infinite(&graphs[i]).expect("non-empty graph")
        })
    });

    let full = engine.gram(n, |i, j| pair_kernel(&densities, i, j));
    let base = engine.gram(split, |i, j| pair_kernel(&densities, i, j));
    let extended = engine.gram_extend(&base, n, |i, j| {
        assert!(
            i >= split || j >= split,
            "extension re-evaluated already-known pair ({i},{j})"
        );
        pair_kernel(&densities, i, j)
    });
    assert_eq!(extended, full, "extension must equal full recomputation");
}

/// Satellite acceptance: the `BatchedTile` and `Serial` backends produce
/// byte-identical Gram matrices on the 32-graph dataset, with the batched
/// backend extracting every feature through the cache *before* its pair
/// loop starts.
#[test]
fn batched_and_serial_backends_are_byte_identical_on_the_dataset() {
    let graphs = synthetic_dataset();
    let n = graphs.len();
    let engine = Engine::with_tile(4, 5);

    let run = |backend: BackendKind| {
        let cache: FeatureCache<DensityMatrix> = FeatureCache::new();
        let density = |i: usize| {
            cache.get_or_compute(graph_key(&graphs[i]), || {
                ctqw_density_infinite(&graphs[i]).expect("non-empty graph")
            })
        };
        let gram = engine.gram_prefetched(
            Some(backend),
            n,
            |i| {
                let _ = density(i);
            },
            |i, j| {
                let d = qjsd_padded(&density(i), &density(j)).expect("valid densities");
                (-d).exp()
            },
        );
        (gram, cache.stats())
    };

    let (serial, serial_stats) = run(BackendKind::Serial);
    let (batched, batched_stats) = run(BackendKind::BatchedTile);
    assert_eq!(
        batched, serial,
        "BatchedTile must reproduce the serial Gram bit for bit"
    );
    // Both schedules computed each distinct graph's density exactly once.
    assert_eq!(serial_stats.misses, n);
    assert_eq!(batched_stats.misses, n);
    // The tiled backend agrees too.
    let (tiled, _) = run(BackendKind::TiledPool);
    assert_eq!(tiled, serial);
}

#[test]
fn gram_agreement_holds_across_tile_sizes_and_thread_counts() {
    let graphs = synthetic_dataset();
    let n = graphs.len();
    let densities: Vec<Arc<DensityMatrix>> = graphs
        .iter()
        .map(|g| Arc::new(ctqw_density_infinite(g).expect("non-empty graph")))
        .collect();
    let reference = Engine::gram_serial(n, |i, j| pair_kernel(&densities, i, j));
    for (threads, tile) in [(1, 7), (2, 16), (8, 1), (3, 64)] {
        let engine = Engine::with_tile(threads, tile);
        let gram = engine.gram(n, |i, j| pair_kernel(&densities, i, j));
        assert_eq!(
            gram, reference,
            "threads={threads} tile={tile} must match the serial path"
        );
    }
}
