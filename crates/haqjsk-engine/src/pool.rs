//! A reusable pool of worker threads with scoped (borrow-friendly) job
//! execution.
//!
//! Every Gram matrix in the workspace is an embarrassingly parallel batch of
//! expensive, independent jobs. Before the engine existed each kernel spawned
//! its own scoped threads per call; the pool amortises thread creation over
//! the process lifetime and gives one place to control the worker count (the
//! `HAQJSK_THREADS` environment variable).
//!
//! The central entry point is [`WorkerPool::scoped_run`], which runs a
//! borrowed closure over an index range and *blocks until every index has
//! been processed*. Blocking-before-return is what makes it sound to hand
//! the workers a non-`'static` closure: the closure reference is only
//! reachable through a task structure whose lifetime ends, with all workers
//! done, before `scoped_run` returns.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Name of the environment variable overriding the worker count.
pub const THREADS_ENV_VAR: &str = "HAQJSK_THREADS";

/// Upper bound on auto-detected workers; explicit `HAQJSK_THREADS` values
/// may exceed it.
const MAX_AUTO_WORKERS: usize = 16;

/// Resolves the worker count: `HAQJSK_THREADS` if set to a positive integer,
/// otherwise the available parallelism capped at 16.
pub fn default_thread_count() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_AUTO_WORKERS)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_available: Condvar,
    shutting_down: AtomicBool,
}

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("haqjsk-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Spawns a pool sized by [`default_thread_count`].
    pub fn with_default_threads() -> Self {
        WorkerPool::new(default_thread_count())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(index)` for every `index in 0..count`, distributing indices
    /// over the workers (and the calling thread, which participates too).
    /// Returns once every index has been processed. If any invocation
    /// panics, the remaining indices are still drained and the panic is
    /// re-raised on the caller.
    pub fn scoped_run(&self, count: usize, f: &(dyn Fn(usize) + Sync)) {
        if count == 0 {
            return;
        }
        if count == 1 {
            f(0);
            return;
        }

        let task = Arc::new(ScopedTask {
            // SAFETY (lifetime erasure): the reference is only dereferenced
            // by workers that have claimed an index not yet counted as
            // complete, and this function blocks on the completion latch
            // until every index has completed — so no worker can observe
            // `f` after `scoped_run` returns. Helper jobs arriving later
            // see the exhausted index counter and return without ever
            // touching `f`.
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f as *const _)
            },
            next: AtomicUsize::new(0),
            count,
            incomplete: Mutex::new(count),
            all_done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });

        // One helper job per worker is enough: each drains the shared
        // index counter until the batch is exhausted. The caller's trace
        // context (if any) rides along so spans opened inside the jobs
        // stay children of the dispatching request.
        let trace_ctx = haqjsk_obs::TraceContext::current();
        let jobs = self.threads().min(count);
        {
            let mut queue = self.shared.queue.lock().expect("queue poisoned");
            for _ in 0..jobs {
                let task = Arc::clone(&task);
                queue.push_back(Box::new(move || {
                    let _trace = haqjsk_obs::TraceContext::attach(trace_ctx);
                    task.run_indices()
                }));
            }
            crate::obs::pool_queue_depth_gauge().set(queue.len() as f64);
        }
        crate::obs::pool_jobs_counter().add(jobs as u64);
        self.shared.work_available.notify_all();

        // The caller participates instead of idling; this also guarantees
        // progress if every pool worker is busy with other batches.
        task.run_indices();

        // Wait for every *index* (not every helper job) to complete: if the
        // caller and a subset of workers finish the batch while the
        // remaining helper jobs are still queued behind other batches,
        // there is nothing to wait for — the stragglers will no-op.
        let mut incomplete = task.incomplete.lock().expect("latch poisoned");
        while *incomplete > 0 {
            incomplete = task
                .all_done
                .wait(incomplete)
                .expect("completion latch poisoned");
        }
        drop(incomplete);

        if task.panicked.load(Ordering::Acquire) {
            panic!("a worker panicked inside WorkerPool::scoped_run");
        }
    }

    /// Runs `f(index)` for `0..count` and collects the return values in
    /// index order.
    pub fn map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        collect_indexed(count, f, |fill| self.scoped_run(count, fill))
    }
}

/// Collects `f(0..count)` in index order by handing `run` a fill closure to
/// execute over every index — the shared slot machinery behind
/// [`WorkerPool::map`] and the engine's backend-dispatched map. `run` must
/// invoke the fill closure for every index in `0..count` exactly once and
/// return only after all invocations completed.
pub(crate) fn collect_indexed<T, F>(
    count: usize,
    f: F,
    run: impl FnOnce(&(dyn Fn(usize) + Sync)),
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    let out = SlotWriter(slots.as_mut_ptr());
    run(&|i| {
        // SAFETY: each index writes exactly one distinct slot, and the
        // slots vector outlives `run`'s blocking completion.
        unsafe { *out.slot(i) = Some(f(i)) };
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index filled its slot"))
        .collect()
}

/// Raw pointer to the output slots of [`collect_indexed`], shared across
/// workers; disjoint index access makes the aliasing sound.
struct SlotWriter<T>(*mut Option<T>);

unsafe impl<T: Send> Send for SlotWriter<T> {}
unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    unsafe fn slot(&self, i: usize) -> *mut Option<T> {
        self.0.add(i)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.work_available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    crate::obs::pool_queue_depth_gauge().set(queue.len() as f64);
                    break job;
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.work_available.wait(queue).expect("queue poisoned");
            }
        };
        job();
    }
}

/// One `scoped_run` batch: the erased closure, the index counter and the
/// per-index completion latch.
struct ScopedTask {
    f: *const (dyn Fn(usize) + Sync + 'static),
    next: AtomicUsize,
    count: usize,
    /// Number of indices not yet completed; `scoped_run` returns when this
    /// reaches zero.
    incomplete: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

// SAFETY: the raw closure pointer is only dereferenced while scoped_run
// blocks the owning stack frame, and the pointee is Sync.
unsafe impl Send for ScopedTask {}
unsafe impl Sync for ScopedTask {}

impl ScopedTask {
    fn run_indices(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                break;
            }
            // SAFETY: index `i` is claimed but not yet completed, so the
            // caller is still blocked on the completion latch and the
            // borrowed closure is alive. The dereference happens only on
            // this path — a straggler job that finds the counter exhausted
            // never touches `f`.
            let f = unsafe { &*self.f };
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            let mut incomplete = self.incomplete.lock().expect("latch poisoned");
            *incomplete -= 1;
            if *incomplete == 0 {
                self.all_done.notify_all();
            }
        }
    }
}
