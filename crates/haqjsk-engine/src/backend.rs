//! Pluggable Gram execution backends.
//!
//! The engine originally hard-coded one execution strategy — the tiled
//! scheduler on the worker pool. This module turns that strategy into an
//! explicit seam: a [`GramBackend`] is the object that decides *how* the
//! `n(n+1)/2` pairwise evaluations (and the per-item feature extractions
//! feeding them) are scheduled, while the [`Engine`](crate::Engine) keeps
//! owning the pool and the tile sizing policy. Three backends ship today:
//!
//! * [`SerialBackend`] — everything on the calling thread, in deterministic
//!   row-major order; the reference all others are tested against,
//! * [`TiledPoolBackend`] — the original behavior: upper-triangle tiles
//!   scheduled over the worker pool, per-item features computed lazily
//!   inside the pair loop (byte-identical to the pre-backend engine),
//! * [`BatchedTileBackend`] — runs every per-item feature extraction the
//!   tiles would perform as **one parallel batch** up front (via the
//!   caller-supplied prefetch hook), then the pairwise tile loop only reads
//!   warm state. This is the seam a SIMD/GPU batched-eigendecomposition
//!   backend plugs into: the batch phase is where whole-dataset
//!   eigendecompositions can be fused.
//!
//! Because per-item features are deterministic and memoised (see
//! [`FeatureCache`](crate::FeatureCache)), all three backends produce
//! byte-identical Gram matrices for any deterministic entry function — the
//! engine integration tests assert this on a 32-graph dataset.
//!
//! Selection: [`Engine`](crate::Engine) builders take a [`BackendKind`];
//! the `HAQJSK_BACKEND` environment variable (`serial` / `tiled` /
//! `batched`) overrides the default for the process-global engine, and
//! per-call overrides flow through the `*_on` entry points.

use crate::gram;
use crate::pool::WorkerPool;
use haqjsk_linalg::Matrix;
use std::sync::OnceLock;

/// Name of the environment variable selecting the default backend.
pub const BACKEND_ENV_VAR: &str = "HAQJSK_BACKEND";

/// A declarative description of a Gram computation that a *remote* backend
/// can serialise and ship to worker processes: which kernel (a stable
/// string id plus its numeric parameters) over which graphs. Local backends
/// never look at it — they already hold the closure. The distributed
/// backend (`haqjsk-dist`) matches `kernel_id` against the kernels it knows
/// how to reconstruct on a worker and falls back to local execution for
/// anything it does not recognise, so attaching a spec is always safe.
pub struct RemoteGram<'a> {
    /// Stable kernel identifier (e.g. `"qjsk_unaligned"`).
    pub kernel_id: &'static str,
    /// Named numeric parameters reconstructing the kernel on a worker.
    pub params: Vec<(&'static str, f64)>,
    /// The dataset the pair indices refer to.
    pub graphs: &'a [haqjsk_graph::Graph],
    /// An opaque fitted-state artifact (e.g. a persisted model) the kernel
    /// needs on the worker beyond its numeric parameters. Shipped
    /// content-addressed like the dataset, so repeated Grams over the same
    /// fitted state ship it once per worker.
    pub artifact: Option<RemoteArtifact<'a>>,
}

/// A content-addressed blob accompanying a [`RemoteGram`]: the serialised
/// fitted state a parameterless `kernel_id` cannot reconstruct on its own.
pub struct RemoteArtifact<'a> {
    /// Content digest of `payload` (hex); workers dedup on it.
    pub id: String,
    /// The serialised artifact text (line-oriented, e.g. a persisted
    /// model from `haqjsk-core::persistence`).
    pub payload: &'a str,
}

/// A per-item feature-extraction hook: `prefetch(i)` warms whatever cached
/// state the entry function will read for item `i`. Entry functions must
/// stay correct without it — it is a scheduling hint, not a requirement.
pub type Prefetch<'a> = &'a (dyn Fn(usize) + Sync);

/// A pairwise Gram entry function over item indices.
pub type Entry<'a> = &'a (dyn Fn(usize, usize) -> f64 + Sync);

/// A whole-tile Gram evaluator: computes the entries of one scheduling
/// tile in a single call. `pairs` holds the tile's upper-triangle index
/// pairs (`i <= j`); the evaluator writes `out[k]` = entry for `pairs[k]`.
///
/// This is the seam batched pair kernels plug into: where an [`Entry`]
/// function sees one pair at a time, a `TileEvaluator` sees a whole tile
/// and can fuse the per-pair work — the quantum kernels assemble all of a
/// tile's mixture matrices and run **one** lane-parallel batched
/// eigenvalue solve (`haqjsk-linalg::batch_symmetric_eigenvalues`); a GPU
/// backend would turn the same tile into one device dispatch.
/// Implementations must produce values byte-identical to their per-pair
/// entry function — every backend (including the serial reference) routes
/// tiles through the evaluator, and the engine tests hold all of them to
/// the per-pair result.
pub trait TileEvaluator: Sync {
    /// Evaluates all of `pairs`, writing the kernel values into `out`
    /// (same length and order as `pairs`).
    fn eval_tile(&self, pairs: &[(usize, usize)], out: &mut [f64]);
}

impl<F> TileEvaluator for F
where
    F: Fn(&[(usize, usize)], &mut [f64]) + Sync,
{
    fn eval_tile(&self, pairs: &[(usize, usize)], out: &mut [f64]) {
        self(pairs, out)
    }
}

/// The available Gram execution strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Single-threaded reference path.
    Serial,
    /// Tiled upper-triangle scheduling over the worker pool (the default).
    #[default]
    TiledPool,
    /// One parallel feature-extraction batch, then the tiled pair loop.
    BatchedTile,
    /// Fan-out over a pool of worker processes (the `haqjsk-dist` crate).
    /// Selected with `HAQJSK_BACKEND=dist:<addr,addr>`; the implementation
    /// is installed at runtime through [`install_distributed_backend`]
    /// because the engine crate cannot depend on the crate that serialises
    /// kernels over the wire. Until one is installed, this kind executes
    /// locally on [`TiledPoolBackend`] (a Gram must never fail because the
    /// distributed substrate is absent).
    Distributed,
}

impl BackendKind {
    /// Every *local* backend, in sweep order (benchmarks iterate this).
    /// [`BackendKind::Distributed`] is deliberately excluded: it needs a
    /// worker pool to be meaningful and falls back to `TiledPool` without
    /// one.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Serial,
        BackendKind::TiledPool,
        BackendKind::BatchedTile,
    ];

    /// The canonical lower-case label (`serial` / `tiled` / `batched` /
    /// `dist`).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Serial => "serial",
            BackendKind::TiledPool => "tiled",
            BackendKind::BatchedTile => "batched",
            BackendKind::Distributed => "dist",
        }
    }

    /// Parses a backend label, rejecting anything unrecognised with an
    /// error that lists the valid spellings. Accepts the canonical labels,
    /// the struct-style spellings (`tiled_pool`, `batched_tile`) and the
    /// distributed form `dist:<addr,addr>` (the address list is read
    /// separately via [`BackendKind::dist_addresses`]).
    pub fn try_parse(raw: &str) -> Result<BackendKind, String> {
        let trimmed = raw.trim();
        let lower = trimmed.to_ascii_lowercase();
        if lower == "dist" || lower == "distributed" || BackendKind::strip_dist(trimmed).is_some() {
            // Bare `dist` would select the distributed kind with nothing to
            // install a coordinator from — which would silently execute on
            // the local fallback. Demanding addresses here keeps "a dist
            // misconfiguration can never silently fall back" absolute.
            if BackendKind::dist_addresses(trimmed).is_none() {
                return Err(format!(
                    "backend '{trimmed}' selects the distributed backend but lists no \
                     worker addresses (expected 'dist:host:port[,host:port...]')"
                ));
            }
            return Ok(BackendKind::Distributed);
        }
        match lower.as_str() {
            "serial" => Ok(BackendKind::Serial),
            "tiled" | "tiled_pool" | "pool" => Ok(BackendKind::TiledPool),
            "batched" | "batched_tile" | "batch" => Ok(BackendKind::BatchedTile),
            other => Err(format!(
                "unknown backend '{other}' (valid: serial, tiled, batched, \
                 dist:host:port[,host:port...])"
            )),
        }
    }

    /// Parses a backend label; `None` for unrecognised input. Prefer
    /// [`BackendKind::try_parse`] where a malformed label should be
    /// reported rather than swallowed.
    pub fn parse(raw: &str) -> Option<BackendKind> {
        BackendKind::try_parse(raw).ok()
    }

    fn parse_address_list(raw: &str) -> Vec<String> {
        raw.split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect()
    }

    /// Strips a case-insensitive `dist:` prefix, returning the address
    /// part.
    fn strip_dist(raw: &str) -> Option<&str> {
        let trimmed = raw.trim();
        let bytes = trimmed.as_bytes();
        // Byte-wise prefix check: slicing at 5 is safe exactly when the
        // first five bytes are the ASCII prefix.
        (bytes.len() >= 5 && bytes[..5].eq_ignore_ascii_case(b"dist:")).then(|| &trimmed[5..])
    }

    /// The worker addresses of a `dist:<addr,addr>` backend value, if
    /// `raw` is one.
    pub fn dist_addresses(raw: &str) -> Option<Vec<String>> {
        let addrs = BackendKind::parse_address_list(BackendKind::strip_dist(raw)?);
        (!addrs.is_empty()).then_some(addrs)
    }

    /// Resolves a raw `HAQJSK_BACKEND` value (as read from the
    /// environment) to a backend kind: `Ok(None)` when unset, a hard error
    /// for malformed values. Factored out of [`BackendKind::from_env`] so
    /// the rejection behavior is testable without touching process-global
    /// environment state.
    pub fn resolve_env_value(raw: Option<&str>) -> Result<Option<BackendKind>, String> {
        match raw {
            None => Ok(None),
            Some(raw) => BackendKind::try_parse(raw)
                .map(Some)
                .map_err(|e| format!("invalid {BACKEND_ENV_VAR}: {e}")),
        }
    }

    /// The `HAQJSK_BACKEND` override. Unrecognised values are a hard error
    /// (surfaced by [`EngineBuilder::build`](crate::EngineBuilder::build))
    /// so a `dist:` typo can never silently fall back to a local backend.
    pub fn from_env() -> Result<Option<BackendKind>, String> {
        let raw = std::env::var(BACKEND_ENV_VAR).ok();
        BackendKind::resolve_env_value(raw.as_deref())
    }

    /// The worker address list of the `HAQJSK_BACKEND` override, if it
    /// selects the distributed backend with explicit addresses.
    pub fn dist_addresses_from_env() -> Option<Vec<String>> {
        std::env::var(BACKEND_ENV_VAR)
            .ok()
            .and_then(|raw| BackendKind::dist_addresses(&raw))
    }

    /// The statically allocated implementation of this kind. For
    /// [`BackendKind::Distributed`] this is the implementation registered
    /// through [`install_distributed_backend`], or [`TiledPoolBackend`]
    /// when none has been installed yet (local execution — never a
    /// failure).
    pub fn implementation(self) -> &'static dyn GramBackend {
        match self {
            BackendKind::Serial => &SerialBackend,
            BackendKind::TiledPool => &TiledPoolBackend,
            BackendKind::BatchedTile => &BatchedTileBackend,
            BackendKind::Distributed => distributed_backend().unwrap_or(&TiledPoolBackend),
        }
    }
}

static DISTRIBUTED_IMPL: OnceLock<&'static dyn GramBackend> = OnceLock::new();

/// Registers the process-wide distributed backend implementation —
/// called once by `haqjsk-dist` (the engine crate cannot depend on it).
/// The first installation wins; repeated calls are no-ops.
pub fn install_distributed_backend(backend: &'static dyn GramBackend) {
    let _ = DISTRIBUTED_IMPL.set(backend);
}

/// The installed distributed backend, if any.
pub fn distributed_backend() -> Option<&'static dyn GramBackend> {
    DISTRIBUTED_IMPL.get().copied()
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A Gram execution strategy: how pairwise entries and per-item feature
/// extractions are scheduled on (or off) the worker pool.
///
/// Implementations must be stateless (selection is by [`BackendKind`], and
/// one static instance serves every engine) and must produce results that
/// are byte-identical to [`SerialBackend`] for deterministic inputs.
pub trait GramBackend: Send + Sync {
    /// The kind this implementation realises.
    fn kind(&self) -> BackendKind;

    /// Computes the symmetric `n x n` Gram matrix of `entry`, optionally
    /// warming per-item state through `prefetch` first.
    fn gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix;

    /// Extends an `m x m` Gram matrix to `total` items, computing only the
    /// new rows/columns; `entry` is never called with both indices `< m`.
    fn gram_extend(
        &self,
        pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix;

    /// Runs `f(i)` for every `i in 0..count` — the per-item companion used
    /// by [`Engine::map`](crate::Engine::map).
    fn for_each(&self, pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync));

    /// Computes the symmetric `n x n` Gram matrix by handing whole tiles
    /// of index pairs to `eval` — the [`TileEvaluator`] counterpart of
    /// [`GramBackend::gram`]. Backends keep their scheduling personality
    /// (serial order, pooled tiles, prefetch batch first) but deliver the
    /// pair list of each tile in one call instead of one pair at a time.
    fn gram_tiles(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix;

    /// [`GramBackend::gram_tiles`] with an optional declarative
    /// [`RemoteGram`] description of the same computation. Local backends
    /// ignore the spec (the default implementation); a distributed backend
    /// uses it to ship tiles to worker processes and keeps `eval` as the
    /// local fallback, so results are byte-identical either way.
    fn gram_tiles_spec(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
        _spec: Option<&RemoteGram<'_>>,
    ) -> Matrix {
        self.gram_tiles(pool, n, tile, prefetch, eval)
    }
}

/// Single-threaded reference backend: deterministic row-major order, no
/// pool involvement at all. Prefetch hooks are skipped — the entry function
/// computes features lazily, which is the serial-optimal order anyway.
pub struct SerialBackend;

impl GramBackend for SerialBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Serial
    }

    fn gram(
        &self,
        _pool: &WorkerPool,
        n: usize,
        _tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_serial(n, entry)
    }

    fn gram_extend(
        &self,
        _pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        _tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_extend_serial(base, total, entry)
    }

    fn for_each(&self, _pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..count {
            f(i);
        }
    }

    // Serial tile evaluation still runs tile by tile (so batched kernels
    // get their batches — the per-pair latency benchmarks measure exactly
    // this path), in deterministic row-major tile order on the calling
    // thread. Prefetch is skipped: lazy per-tile extraction is the
    // serial-optimal order.
    fn gram_tiles(
        &self,
        _pool: &WorkerPool,
        n: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        gram::gram_serial_tiles(n, tile, |pairs: &[(usize, usize)], out: &mut [f64]| {
            eval.eval_tile(pairs, out)
        })
    }
}

/// The original engine behavior: tiles over the pool, features computed
/// lazily by whichever tile touches an item first. Prefetch hooks are
/// ignored so this stays byte- and schedule-identical to the pre-backend
/// engine.
pub struct TiledPoolBackend;

impl GramBackend for TiledPoolBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::TiledPool
    }

    fn gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_tiled(pool, n, tile, entry)
    }

    fn gram_extend(
        &self,
        pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_extend(pool, base, total, tile, entry)
    }

    fn for_each(&self, pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync)) {
        pool.scoped_run(count, f);
    }

    // Pooled tile evaluation: the same tile grid as the per-pair path, but
    // each worker hands its tile's pair list to the evaluator in one call.
    // Prefetch is ignored (features are computed lazily by whichever tile
    // touches an item first, as in the per-pair path).
    fn gram_tiles(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        gram::gram_tiled_eval(
            pool,
            n,
            tile,
            |pairs: &[(usize, usize)], out: &mut [f64]| eval.eval_tile(pairs, out),
        )
    }
}

/// Batch-then-pairs backend: all per-item feature extractions run as one
/// parallel batch over the pool *before* the pairwise tile loop starts, so
/// the pair loop only ever reads warm cached state. Item-level parallelism
/// in the batch phase beats tile-level parallelism whenever feature
/// extraction (the `O(n³)` eigendecompositions) dominates, because every
/// worker stays busy on distinct items instead of tiles racing to compute
/// the same item's features behind a cache lock.
pub struct BatchedTileBackend;

impl GramBackend for BatchedTileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::BatchedTile
    }

    fn gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        if let Some(prefetch) = prefetch {
            pool.scoped_run(n, prefetch);
        }
        gram::gram_tiled(pool, n, tile, entry)
    }

    fn gram_extend(
        &self,
        pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        if let Some(prefetch) = prefetch {
            // New entries touch every item (old rows pair with new columns),
            // so the whole combined index range is batched.
            pool.scoped_run(total, prefetch);
        }
        gram::gram_extend(pool, base, total, tile, entry)
    }

    fn for_each(&self, pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync)) {
        pool.scoped_run(count, f);
    }

    // Feature batch first, then pooled whole-tile evaluation — the full
    // batched pipeline: per-item artifacts as one parallel batch, per-tile
    // mixture batches inside the pair phase.
    fn gram_tiles(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        if let Some(prefetch) = prefetch {
            pool.scoped_run(n, prefetch);
        }
        gram::gram_tiled_eval(
            pool,
            n,
            tile,
            |pairs: &[(usize, usize)], out: &mut [f64]| eval.eval_tile(pairs, out),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn labels_roundtrip_through_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.implementation().kind(), kind);
        }
        assert_eq!(
            BackendKind::parse("Tiled_Pool"),
            Some(BackendKind::TiledPool)
        );
        assert_eq!(
            BackendKind::parse(" BATCH "),
            Some(BackendKind::BatchedTile)
        );
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::default(), BackendKind::TiledPool);
    }

    #[test]
    fn distributed_labels_and_addresses_parse() {
        assert_eq!(
            BackendKind::parse("dist:127.0.0.1:7001,127.0.0.1:7002"),
            Some(BackendKind::Distributed)
        );
        // Prefix matching is case-insensitive like every other label.
        assert_eq!(
            BackendKind::parse("Dist:127.0.0.1:7001"),
            Some(BackendKind::Distributed)
        );
        assert_eq!(BackendKind::Distributed.label(), "dist");
        assert_eq!(
            BackendKind::dist_addresses("dist:127.0.0.1:7001, 127.0.0.1:7002"),
            Some(vec![
                "127.0.0.1:7001".to_string(),
                "127.0.0.1:7002".to_string()
            ])
        );
        assert_eq!(
            BackendKind::dist_addresses("DIST:h:1"),
            Some(vec!["h:1".to_string()])
        );
        assert_eq!(BackendKind::dist_addresses("tiled"), None);
        // A missing or empty address list is a configuration error, not a
        // kind: accepting it would select `Distributed` with no way to
        // install a coordinator, i.e. a silent local fallback.
        for bad in ["dist", "distributed", "dist:", "dist: , "] {
            let err = BackendKind::try_parse(bad).unwrap_err();
            assert!(err.contains("worker addresses"), "{bad}: {err}");
        }
    }

    #[test]
    fn malformed_env_values_are_hard_errors() {
        assert_eq!(BackendKind::resolve_env_value(None), Ok(None));
        assert_eq!(
            BackendKind::resolve_env_value(Some("batched")),
            Ok(Some(BackendKind::BatchedTile))
        );
        // The classic typo the satellite task exists for: a misspelled
        // dist backend must not silently fall back to serial.
        let err = BackendKind::resolve_env_value(Some("dst:127.0.0.1:7001")).unwrap_err();
        assert!(err.contains("HAQJSK_BACKEND"), "{err}");
        assert!(err.contains("serial"), "error must list valid names: {err}");
        assert!(err.contains("dist:"), "error must list valid names: {err}");
        assert!(BackendKind::resolve_env_value(Some("")).is_err());
    }

    #[test]
    fn distributed_falls_back_to_tiled_until_installed() {
        // Nothing installs a distributed backend inside the engine crate's
        // own tests, so the implementation is the local TiledPool fallback
        // (a Gram must never fail because the substrate is absent).
        if distributed_backend().is_none() {
            assert_eq!(
                BackendKind::Distributed.implementation().kind(),
                BackendKind::TiledPool
            );
        }
    }

    #[test]
    fn all_backends_agree_bytewise() {
        let pool = WorkerPool::new(3);
        let entry = |i: usize, j: usize| ((i * 13 + j * 7) as f64).cos() + (i + j) as f64;
        let reference = gram::gram_serial(17, entry);
        for kind in BackendKind::ALL {
            let backend = kind.implementation();
            let out = backend.gram(&pool, 17, 4, None, &entry);
            assert_eq!(out, reference, "{kind} gram");
            let base = backend.gram(&pool, 11, 4, None, &entry);
            let extended = backend.gram_extend(&pool, &base, 17, 4, None, &entry);
            assert_eq!(extended, reference, "{kind} gram_extend");
        }
    }

    #[test]
    fn tile_evaluation_matches_per_pair_on_every_backend() {
        let pool = WorkerPool::new(3);
        let entry = |i: usize, j: usize| ((i * 11 + j * 5) as f64).sin() + (i * j) as f64;
        let reference = gram::gram_serial(19, entry);
        let eval = |pairs: &[(usize, usize)], out: &mut [f64]| {
            assert!(!pairs.is_empty(), "tiles are never empty");
            for (k, &(i, j)) in pairs.iter().enumerate() {
                assert!(i <= j, "tiles cover the upper triangle");
                out[k] = entry(i, j);
            }
        };
        for kind in BackendKind::ALL {
            let out = kind.implementation().gram_tiles(&pool, 19, 4, None, &eval);
            assert_eq!(out, reference, "{kind} gram_tiles");
            // Degenerate sizes.
            let empty = kind.implementation().gram_tiles(&pool, 0, 4, None, &eval);
            assert_eq!(empty.rows(), 0, "{kind}");
        }
    }

    #[test]
    fn batched_backend_prefetches_before_tile_evaluation() {
        let pool = WorkerPool::new(2);
        let prefetched = AtomicUsize::new(0);
        let n = 9;
        let prefetch = |_i: usize| {
            prefetched.fetch_add(1, Ordering::SeqCst);
        };
        let eval = |pairs: &[(usize, usize)], out: &mut [f64]| {
            assert_eq!(prefetched.load(Ordering::SeqCst), n);
            for (k, &(i, j)) in pairs.iter().enumerate() {
                out[k] = (i + j) as f64;
            }
        };
        let out = BatchedTileBackend.gram_tiles(&pool, n, 3, Some(&prefetch), &eval);
        assert_eq!(out, gram::gram_serial(n, |i, j| (i + j) as f64));
    }

    #[test]
    fn batched_backend_runs_prefetch_before_entries() {
        let pool = WorkerPool::new(2);
        let prefetched = AtomicUsize::new(0);
        let n = 9;
        let prefetch = |_i: usize| {
            prefetched.fetch_add(1, Ordering::SeqCst);
        };
        let entry = |i: usize, j: usize| {
            assert_eq!(
                prefetched.load(Ordering::SeqCst),
                n,
                "pair loop must start only after the whole batch"
            );
            (i + j) as f64
        };
        let out = BatchedTileBackend.gram(&pool, n, 3, Some(&prefetch), &entry);
        assert_eq!(out, gram::gram_serial(n, |i, j| (i + j) as f64));
        assert_eq!(prefetched.load(Ordering::SeqCst), n);
    }
}
