//! Pluggable Gram execution backends.
//!
//! The engine originally hard-coded one execution strategy — the tiled
//! scheduler on the worker pool. This module turns that strategy into an
//! explicit seam: a [`GramBackend`] is the object that decides *how* the
//! `n(n+1)/2` pairwise evaluations (and the per-item feature extractions
//! feeding them) are scheduled, while the [`Engine`](crate::Engine) keeps
//! owning the pool and the tile sizing policy. Three backends ship today:
//!
//! * [`SerialBackend`] — everything on the calling thread, in deterministic
//!   row-major order; the reference all others are tested against,
//! * [`TiledPoolBackend`] — the original behavior: upper-triangle tiles
//!   scheduled over the worker pool, per-item features computed lazily
//!   inside the pair loop (byte-identical to the pre-backend engine),
//! * [`BatchedTileBackend`] — runs every per-item feature extraction the
//!   tiles would perform as **one parallel batch** up front (via the
//!   caller-supplied prefetch hook), then the pairwise tile loop only reads
//!   warm state. This is the seam a SIMD/GPU batched-eigendecomposition
//!   backend plugs into: the batch phase is where whole-dataset
//!   eigendecompositions can be fused.
//!
//! Because per-item features are deterministic and memoised (see
//! [`FeatureCache`](crate::FeatureCache)), all three backends produce
//! byte-identical Gram matrices for any deterministic entry function — the
//! engine integration tests assert this on a 32-graph dataset.
//!
//! Selection: [`Engine`](crate::Engine) builders take a [`BackendKind`];
//! the `HAQJSK_BACKEND` environment variable (`serial` / `tiled` /
//! `batched`) overrides the default for the process-global engine, and
//! per-call overrides flow through the `*_on` entry points.

use crate::gram;
use crate::pool::WorkerPool;
use haqjsk_linalg::Matrix;

/// Name of the environment variable selecting the default backend.
pub const BACKEND_ENV_VAR: &str = "HAQJSK_BACKEND";

/// A per-item feature-extraction hook: `prefetch(i)` warms whatever cached
/// state the entry function will read for item `i`. Entry functions must
/// stay correct without it — it is a scheduling hint, not a requirement.
pub type Prefetch<'a> = &'a (dyn Fn(usize) + Sync);

/// A pairwise Gram entry function over item indices.
pub type Entry<'a> = &'a (dyn Fn(usize, usize) -> f64 + Sync);

/// A whole-tile Gram evaluator: computes the entries of one scheduling
/// tile in a single call. `pairs` holds the tile's upper-triangle index
/// pairs (`i <= j`); the evaluator writes `out[k]` = entry for `pairs[k]`.
///
/// This is the seam batched pair kernels plug into: where an [`Entry`]
/// function sees one pair at a time, a `TileEvaluator` sees a whole tile
/// and can fuse the per-pair work — the quantum kernels assemble all of a
/// tile's mixture matrices and run **one** lane-parallel batched
/// eigenvalue solve (`haqjsk-linalg::batch_symmetric_eigenvalues`); a GPU
/// backend would turn the same tile into one device dispatch.
/// Implementations must produce values byte-identical to their per-pair
/// entry function — every backend (including the serial reference) routes
/// tiles through the evaluator, and the engine tests hold all of them to
/// the per-pair result.
pub trait TileEvaluator: Sync {
    /// Evaluates all of `pairs`, writing the kernel values into `out`
    /// (same length and order as `pairs`).
    fn eval_tile(&self, pairs: &[(usize, usize)], out: &mut [f64]);
}

impl<F> TileEvaluator for F
where
    F: Fn(&[(usize, usize)], &mut [f64]) + Sync,
{
    fn eval_tile(&self, pairs: &[(usize, usize)], out: &mut [f64]) {
        self(pairs, out)
    }
}

/// The available Gram execution strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Single-threaded reference path.
    Serial,
    /// Tiled upper-triangle scheduling over the worker pool (the default).
    #[default]
    TiledPool,
    /// One parallel feature-extraction batch, then the tiled pair loop.
    BatchedTile,
}

impl BackendKind {
    /// Every backend, in sweep order (benchmarks iterate this).
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Serial,
        BackendKind::TiledPool,
        BackendKind::BatchedTile,
    ];

    /// The canonical lower-case label (`serial` / `tiled` / `batched`).
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Serial => "serial",
            BackendKind::TiledPool => "tiled",
            BackendKind::BatchedTile => "batched",
        }
    }

    /// Parses a backend label; accepts the canonical labels plus the
    /// struct-style spellings (`tiled_pool`, `batched_tile`).
    pub fn parse(raw: &str) -> Option<BackendKind> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "serial" => Some(BackendKind::Serial),
            "tiled" | "tiled_pool" | "pool" => Some(BackendKind::TiledPool),
            "batched" | "batched_tile" | "batch" => Some(BackendKind::BatchedTile),
            _ => None,
        }
    }

    /// The `HAQJSK_BACKEND` override, if set to a recognised label.
    pub fn from_env() -> Option<BackendKind> {
        std::env::var(BACKEND_ENV_VAR)
            .ok()
            .and_then(|raw| BackendKind::parse(&raw))
    }

    /// The statically allocated implementation of this kind.
    pub fn implementation(self) -> &'static dyn GramBackend {
        match self {
            BackendKind::Serial => &SerialBackend,
            BackendKind::TiledPool => &TiledPoolBackend,
            BackendKind::BatchedTile => &BatchedTileBackend,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A Gram execution strategy: how pairwise entries and per-item feature
/// extractions are scheduled on (or off) the worker pool.
///
/// Implementations must be stateless (selection is by [`BackendKind`], and
/// one static instance serves every engine) and must produce results that
/// are byte-identical to [`SerialBackend`] for deterministic inputs.
pub trait GramBackend: Send + Sync {
    /// The kind this implementation realises.
    fn kind(&self) -> BackendKind;

    /// Computes the symmetric `n x n` Gram matrix of `entry`, optionally
    /// warming per-item state through `prefetch` first.
    fn gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix;

    /// Extends an `m x m` Gram matrix to `total` items, computing only the
    /// new rows/columns; `entry` is never called with both indices `< m`.
    fn gram_extend(
        &self,
        pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix;

    /// Runs `f(i)` for every `i in 0..count` — the per-item companion used
    /// by [`Engine::map`](crate::Engine::map).
    fn for_each(&self, pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync));

    /// Computes the symmetric `n x n` Gram matrix by handing whole tiles
    /// of index pairs to `eval` — the [`TileEvaluator`] counterpart of
    /// [`GramBackend::gram`]. Backends keep their scheduling personality
    /// (serial order, pooled tiles, prefetch batch first) but deliver the
    /// pair list of each tile in one call instead of one pair at a time.
    fn gram_tiles(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix;
}

/// Single-threaded reference backend: deterministic row-major order, no
/// pool involvement at all. Prefetch hooks are skipped — the entry function
/// computes features lazily, which is the serial-optimal order anyway.
pub struct SerialBackend;

impl GramBackend for SerialBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Serial
    }

    fn gram(
        &self,
        _pool: &WorkerPool,
        n: usize,
        _tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_serial(n, entry)
    }

    fn gram_extend(
        &self,
        _pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        _tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_extend_serial(base, total, entry)
    }

    fn for_each(&self, _pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..count {
            f(i);
        }
    }

    // Serial tile evaluation still runs tile by tile (so batched kernels
    // get their batches — the per-pair latency benchmarks measure exactly
    // this path), in deterministic row-major tile order on the calling
    // thread. Prefetch is skipped: lazy per-tile extraction is the
    // serial-optimal order.
    fn gram_tiles(
        &self,
        _pool: &WorkerPool,
        n: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        gram::gram_serial_tiles(n, tile, |pairs: &[(usize, usize)], out: &mut [f64]| {
            eval.eval_tile(pairs, out)
        })
    }
}

/// The original engine behavior: tiles over the pool, features computed
/// lazily by whichever tile touches an item first. Prefetch hooks are
/// ignored so this stays byte- and schedule-identical to the pre-backend
/// engine.
pub struct TiledPoolBackend;

impl GramBackend for TiledPoolBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::TiledPool
    }

    fn gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_tiled(pool, n, tile, entry)
    }

    fn gram_extend(
        &self,
        pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        gram::gram_extend(pool, base, total, tile, entry)
    }

    fn for_each(&self, pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync)) {
        pool.scoped_run(count, f);
    }

    // Pooled tile evaluation: the same tile grid as the per-pair path, but
    // each worker hands its tile's pair list to the evaluator in one call.
    // Prefetch is ignored (features are computed lazily by whichever tile
    // touches an item first, as in the per-pair path).
    fn gram_tiles(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        _prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        gram::gram_tiled_eval(
            pool,
            n,
            tile,
            |pairs: &[(usize, usize)], out: &mut [f64]| eval.eval_tile(pairs, out),
        )
    }
}

/// Batch-then-pairs backend: all per-item feature extractions run as one
/// parallel batch over the pool *before* the pairwise tile loop starts, so
/// the pair loop only ever reads warm cached state. Item-level parallelism
/// in the batch phase beats tile-level parallelism whenever feature
/// extraction (the `O(n³)` eigendecompositions) dominates, because every
/// worker stays busy on distinct items instead of tiles racing to compute
/// the same item's features behind a cache lock.
pub struct BatchedTileBackend;

impl GramBackend for BatchedTileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::BatchedTile
    }

    fn gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        if let Some(prefetch) = prefetch {
            pool.scoped_run(n, prefetch);
        }
        gram::gram_tiled(pool, n, tile, entry)
    }

    fn gram_extend(
        &self,
        pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: Entry<'_>,
    ) -> Matrix {
        if let Some(prefetch) = prefetch {
            // New entries touch every item (old rows pair with new columns),
            // so the whole combined index range is batched.
            pool.scoped_run(total, prefetch);
        }
        gram::gram_extend(pool, base, total, tile, entry)
    }

    fn for_each(&self, pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync)) {
        pool.scoped_run(count, f);
    }

    // Feature batch first, then pooled whole-tile evaluation — the full
    // batched pipeline: per-item artifacts as one parallel batch, per-tile
    // mixture batches inside the pair phase.
    fn gram_tiles(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        if let Some(prefetch) = prefetch {
            pool.scoped_run(n, prefetch);
        }
        gram::gram_tiled_eval(
            pool,
            n,
            tile,
            |pairs: &[(usize, usize)], out: &mut [f64]| eval.eval_tile(pairs, out),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn labels_roundtrip_through_parse() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.implementation().kind(), kind);
        }
        assert_eq!(
            BackendKind::parse("Tiled_Pool"),
            Some(BackendKind::TiledPool)
        );
        assert_eq!(
            BackendKind::parse(" BATCH "),
            Some(BackendKind::BatchedTile)
        );
        assert_eq!(BackendKind::parse("gpu"), None);
        assert_eq!(BackendKind::default(), BackendKind::TiledPool);
    }

    #[test]
    fn all_backends_agree_bytewise() {
        let pool = WorkerPool::new(3);
        let entry = |i: usize, j: usize| ((i * 13 + j * 7) as f64).cos() + (i + j) as f64;
        let reference = gram::gram_serial(17, entry);
        for kind in BackendKind::ALL {
            let backend = kind.implementation();
            let out = backend.gram(&pool, 17, 4, None, &entry);
            assert_eq!(out, reference, "{kind} gram");
            let base = backend.gram(&pool, 11, 4, None, &entry);
            let extended = backend.gram_extend(&pool, &base, 17, 4, None, &entry);
            assert_eq!(extended, reference, "{kind} gram_extend");
        }
    }

    #[test]
    fn tile_evaluation_matches_per_pair_on_every_backend() {
        let pool = WorkerPool::new(3);
        let entry = |i: usize, j: usize| ((i * 11 + j * 5) as f64).sin() + (i * j) as f64;
        let reference = gram::gram_serial(19, entry);
        let eval = |pairs: &[(usize, usize)], out: &mut [f64]| {
            assert!(!pairs.is_empty(), "tiles are never empty");
            for (k, &(i, j)) in pairs.iter().enumerate() {
                assert!(i <= j, "tiles cover the upper triangle");
                out[k] = entry(i, j);
            }
        };
        for kind in BackendKind::ALL {
            let out = kind.implementation().gram_tiles(&pool, 19, 4, None, &eval);
            assert_eq!(out, reference, "{kind} gram_tiles");
            // Degenerate sizes.
            let empty = kind.implementation().gram_tiles(&pool, 0, 4, None, &eval);
            assert_eq!(empty.rows(), 0, "{kind}");
        }
    }

    #[test]
    fn batched_backend_prefetches_before_tile_evaluation() {
        let pool = WorkerPool::new(2);
        let prefetched = AtomicUsize::new(0);
        let n = 9;
        let prefetch = |_i: usize| {
            prefetched.fetch_add(1, Ordering::SeqCst);
        };
        let eval = |pairs: &[(usize, usize)], out: &mut [f64]| {
            assert_eq!(prefetched.load(Ordering::SeqCst), n);
            for (k, &(i, j)) in pairs.iter().enumerate() {
                out[k] = (i + j) as f64;
            }
        };
        let out = BatchedTileBackend.gram_tiles(&pool, n, 3, Some(&prefetch), &eval);
        assert_eq!(out, gram::gram_serial(n, |i, j| (i + j) as f64));
    }

    #[test]
    fn batched_backend_runs_prefetch_before_entries() {
        let pool = WorkerPool::new(2);
        let prefetched = AtomicUsize::new(0);
        let n = 9;
        let prefetch = |_i: usize| {
            prefetched.fetch_add(1, Ordering::SeqCst);
        };
        let entry = |i: usize, j: usize| {
            assert_eq!(
                prefetched.load(Ordering::SeqCst),
                n,
                "pair loop must start only after the whole batch"
            );
            (i + j) as f64
        };
        let out = BatchedTileBackend.gram(&pool, n, 3, Some(&prefetch), &entry);
        assert_eq!(out, gram::gram_serial(n, |i, j| (i + j) as f64));
        assert_eq!(prefetched.load(Ordering::SeqCst), n);
    }
}
