//! A small, dependency-free JSON value type with parser and writer.
//!
//! The serving protocol is JSON-lines over TCP; with no serde available in
//! this environment, the engine carries its own minimal JSON implementation:
//! a recursive-descent parser and a writer covering the full value grammar
//! (objects, arrays, strings with escapes, finite numbers, booleans, null).
//! Numbers are always `f64`, which is sufficient for the protocol's counts,
//! kernel values and graph indices (all well below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialisation deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as usize),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document (must be a single value, whole input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if *x == 0.0 && x.is_sign_negative() {
                    // The i64 fast path below would erase the sign of -0.0;
                    // the wire format must round-trip every finite f64
                    // bit-exactly (the distributed backend relies on it).
                    f.write_str("-0")
                } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the protocol;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_serialises_roundtrip() {
        let text = r#"{"cmd":"fit","graphs":[{"n":3,"edges":[[0,1],[1,2]]}],"mu":1.5,"ok":true,"note":null}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.get("cmd").and_then(Json::as_str), Some("fit"));
        assert_eq!(value.get("mu").and_then(Json::as_f64), Some(1.5));
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(value.get("note"), Some(&Json::Null));
        let graphs = value.get("graphs").and_then(Json::as_array).unwrap();
        assert_eq!(graphs[0].get("n").and_then(Json::as_usize), Some(3));
        // Round-trip through the writer.
        let rewritten = Json::parse(&value.to_string()).unwrap();
        assert_eq!(rewritten, value);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Json::Str("line\nbreak \"quoted\" back\\slash\ttab".to_string());
        let parsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(parsed, original);
        let unicode = Json::parse(r#""café""#).unwrap();
        assert_eq!(unicode.as_str(), Some("café"));
    }

    #[test]
    fn numbers_cover_int_float_exp() {
        assert_eq!(Json::parse("42").unwrap().as_f64(), Some(42.0));
        assert_eq!(Json::parse("-3.25").unwrap().as_f64(), Some(-3.25));
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("2.5E-2").unwrap().as_f64(), Some(0.025));
        assert_eq!(Json::Num(7.0).to_string(), "7");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_usize(), Some(3));
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }
}
