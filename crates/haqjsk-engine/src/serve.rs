//! The JSON-lines TCP serving substrate.
//!
//! Protocol: one JSON object per line, one response line per request, over a
//! plain `TcpStream`. The engine provides the transport loop and graph
//! (de)serialisation; the `haqjsk-serve` binary (umbrella crate) wires in
//! the model-level handlers (fit / transform / predict / save / load).
//!
//! ```text
//! -> {"cmd":"ping"}
//! <- {"ok":true,"pong":true}
//! -> {"cmd":"fit","graphs":[{"n":4,"edges":[[0,1],[1,2],[2,3]]}, ...],"variant":"A"}
//! <- {"ok":true,"num_graphs":32,"levels":3}
//! ```
//!
//! Malformed lines never kill the connection: they produce
//! `{"ok":false,"error":"..."}` responses.
//!
//! ## Overload safety
//!
//! The transport is hardened against misbehaving clients and overload
//! spikes ([`ServeConfig`] holds the knobs, all settable via environment
//! variables):
//!
//! * **Connection cap** (`HAQJSK_SERVE_MAX_CONNS`): connections beyond the
//!   cap receive one `{"ok":false,"error":"overloaded"}` line and a clean
//!   close instead of a thread.
//! * **Bounded frames** (`HAQJSK_SERVE_MAX_FRAME_BYTES`): a request line
//!   longer than the cap is answered with an error line and the connection
//!   closed — the server never buffers an unbounded line. The distributed
//!   worker wire shares this framing (a worker is a [`Server`]).
//! * **Slow-client defense** (`HAQJSK_SERVE_IO_TIMEOUT_MS`): a connection
//!   that stalls *mid-frame* longer than the timeout is closed (slow-loris
//!   cannot pin a thread), and writes that stall are bounded by the same
//!   timeout. Idle connections *between* frames are unaffected — long-lived
//!   keep-alive clients (the distributed coordinator, serving clients
//!   between requests) never time out while quiescent.
//! * **Panic isolation**: a handler panic is caught, answered with
//!   `{"ok":false,"error":"internal error ..."}`, counted in
//!   `haqjsk_serve_panics_total`, and the connection (and process) live on.
//! * **Graceful drain** ([`Server::drain`]): stop accepting, answer
//!   in-flight requests, close idle connections, all within a deadline —
//!   observable via the `haqjsk_serve_state` one-hot gauge.
//!
//! Internally every connection polls its socket on a short tick so it can
//! observe shutdown/drain flags while blocked on a quiet peer; the tick
//! only matters when a socket is idle, so the request/response hot path is
//! unaffected.

use crate::json::Json;
use haqjsk_graph::Graph;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Environment variable capping concurrent connections.
pub const MAX_CONNS_ENV_VAR: &str = "HAQJSK_SERVE_MAX_CONNS";
/// Environment variable bounding a single request frame, in bytes.
pub const MAX_FRAME_BYTES_ENV_VAR: &str = "HAQJSK_SERVE_MAX_FRAME_BYTES";
/// Environment variable bounding mid-frame socket stalls, in milliseconds
/// (`0` disables the timeout).
pub const IO_TIMEOUT_ENV_VAR: &str = "HAQJSK_SERVE_IO_TIMEOUT_MS";

/// Transport-level limits of a [`Server`]. `Default` is the production
/// shape; [`ServeConfig::from_env`] layers the `HAQJSK_SERVE_*` variables
/// on top.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently open connections; over-limit connections get
    /// one `overloaded` error line and a clean close.
    pub max_conns: usize,
    /// Maximum bytes of a single request line; longer frames are rejected
    /// with an error line and the connection is closed.
    pub max_frame_bytes: usize,
    /// How long a connection may stall mid-frame (reading) or mid-response
    /// (writing) before it is closed. `None` disables the defense.
    pub io_timeout: Option<Duration>,
    /// Poll granularity of idle connections — how quickly they observe
    /// shutdown/drain flags. Not environment-configurable; tests shrink it.
    pub tick: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_conns: 1024,
            max_frame_bytes: 4 << 20,
            io_timeout: Some(Duration::from_secs(30)),
            tick: Duration::from_millis(100),
        }
    }
}

impl ServeConfig {
    /// The defaults with any `HAQJSK_SERVE_*` environment overrides
    /// applied. Unparseable values are hard errors — a typo silently
    /// falling back to defaults would defeat the operator's intent.
    pub fn from_env() -> Result<ServeConfig, String> {
        let mut config = ServeConfig::default();
        if let Some(v) = parse_env_usize(MAX_CONNS_ENV_VAR)? {
            if v == 0 {
                return Err(format!("{MAX_CONNS_ENV_VAR} must be positive"));
            }
            config.max_conns = v;
        }
        if let Some(v) = parse_env_usize(MAX_FRAME_BYTES_ENV_VAR)? {
            if v == 0 {
                return Err(format!("{MAX_FRAME_BYTES_ENV_VAR} must be positive"));
            }
            config.max_frame_bytes = v;
        }
        if let Some(v) = parse_env_usize(IO_TIMEOUT_ENV_VAR)? {
            config.io_timeout = (v > 0).then(|| Duration::from_millis(v as u64));
        }
        Ok(config)
    }
}

fn parse_env_usize(name: &str) -> Result<Option<usize>, String> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("invalid {name}='{raw}': {e}")),
    }
}

/// A request handler: maps one request value to one response value. Must be
/// shareable across connection threads.
pub trait Handler: Send + Sync + 'static {
    /// Handles a single request.
    fn handle(&self, request: &Json) -> Json;

    /// Whether the connection should be closed after the response to
    /// `request` has been written — the hook fault-injection and shutdown
    /// commands use to hang up deliberately (the distributed worker's
    /// chaos knob relies on it). The default keeps every connection open.
    fn hangup_after(&self, _request: &Json) -> bool {
        false
    }

    /// Whether the response to `request` should be *swallowed*: the
    /// connection closes immediately without writing anything, so the peer
    /// observes a mid-stream EOF instead of a reply. The distributed
    /// worker's chaos harness uses this to simulate a worker dying between
    /// receiving a request and answering it. The default never swallows.
    fn swallow_response(&self, _request: &Json) -> bool {
        false
    }
}

impl<F> Handler for F
where
    F: Fn(&Json) -> Json + Send + Sync + 'static,
{
    fn handle(&self, request: &Json) -> Json {
        self(request)
    }
}

/// State shared between the accept loop, every connection thread, and the
/// [`ServeControl`] handles.
struct ServeShared {
    /// Hard stop: connections exit at their next flag check.
    shutdown: AtomicBool,
    /// Drain phase: no new connections, idle connections close, in-flight
    /// requests are answered.
    draining: AtomicBool,
    /// Currently open connections (RAII-guarded).
    active: AtomicUsize,
    /// Requests currently being handled or answered.
    busy: AtomicUsize,
}

impl ServeShared {
    fn new() -> Arc<ServeShared> {
        Arc::new(ServeShared {
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
        })
    }
}

/// A cheap, cloneable handle onto a running server's lifecycle state:
/// lets a request handler (which is built before the server exists)
/// request a drain and observe connection/request gauges.
#[derive(Clone)]
pub struct ServeControl {
    shared: Arc<ServeShared>,
}

impl ServeControl {
    /// Flips the server into the draining state: the accept loop stops
    /// taking connections, idle connections close at their next tick, and
    /// in-flight requests are still answered. Idempotent. The owner of the
    /// [`Server`] completes the drain with [`Server::drain`].
    pub fn begin_drain(&self) {
        if !self.shared.draining.swap(true, Ordering::AcqRel) {
            crate::obs::set_serve_state(true);
        }
    }

    /// Whether a drain has been requested or started.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Requests currently being handled or answered.
    pub fn busy_requests(&self) -> usize {
        self.shared.busy.load(Ordering::Acquire)
    }
}

/// RAII registration of one open connection: keeps the active-connections
/// count and gauge exact on every exit path (EOF, error, panic, drain).
struct ConnGuard {
    shared: Arc<ServeShared>,
}

impl ConnGuard {
    fn register(shared: &Arc<ServeShared>) -> ConnGuard {
        shared.active.fetch_add(1, Ordering::AcqRel);
        crate::obs::serve_active_connections_gauge().add(1.0);
        ConnGuard {
            shared: Arc::clone(shared),
        }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        crate::obs::serve_active_connections_gauge().add(-1.0);
    }
}

/// RAII in-flight request marker (see [`ServeShared::busy`]); a drain waits
/// for this to reach zero before force-closing connections.
struct BusyGuard {
    shared: Arc<ServeShared>,
}

impl BusyGuard {
    fn enter(shared: &Arc<ServeShared>) -> BusyGuard {
        shared.busy.fetch_add(1, Ordering::AcqRel);
        BusyGuard {
            shared: Arc::clone(shared),
        }
    }
}

impl Drop for BusyGuard {
    fn drop(&mut self) {
        self.shared.busy.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Outcome of a [`Server::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every connection closed within the deadline.
    pub drained: bool,
    /// Connections still open when the deadline expired (0 when drained).
    pub remaining_connections: usize,
}

/// A running server: the listener address plus shutdown/bookkeeping handles.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServeShared>,
    connections: Arc<AtomicUsize>,
    accept_thread: Option<thread::JoinHandle<()>>,
    tick: Duration,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
    /// `handler` on a background accept thread, one thread per connection,
    /// with the limits of [`ServeConfig::from_env`].
    pub fn spawn(addr: &str, handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        let config =
            ServeConfig::from_env().map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
        Server::spawn_with_config(addr, handler, config)
    }

    /// [`Server::spawn`] with explicit limits (tests shrink them; the
    /// serving layer threads its own parsed configuration through).
    pub fn spawn_with_config(
        addr: &str,
        handler: Arc<dyn Handler>,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = ServeShared::new();
        let connections = Arc::new(AtomicUsize::new(0));
        crate::obs::set_serve_state(false);

        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let tick = config.tick;
        let accept_thread = thread::Builder::new()
            .name("haqjsk-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::Acquire)
                        || accept_shared.draining.load(Ordering::Acquire)
                    {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // One JSON line per request/response: Nagle + delayed
                    // ACK would add tens of milliseconds per exchange.
                    stream.set_nodelay(true).ok();
                    if accept_shared.active.load(Ordering::Acquire) >= config.max_conns {
                        shed_connection(stream);
                        continue;
                    }
                    accept_connections.fetch_add(1, Ordering::Relaxed);
                    crate::obs::serve_connections_counter().inc();
                    let guard = ConnGuard::register(&accept_shared);
                    let handler = Arc::clone(&handler);
                    let conn_shared = Arc::clone(&accept_shared);
                    let conn_config = config.clone();
                    let _ = thread::Builder::new()
                        .name("haqjsk-serve-conn".to_string())
                        .spawn(move || {
                            let _guard = guard;
                            let _ = serve_connection_bounded(
                                stream,
                                handler.as_ref(),
                                &conn_shared,
                                &conn_config,
                            );
                        });
                }
            })?;

        Ok(Server {
            local_addr,
            shared,
            connections,
            accept_thread: Some(accept_thread),
            tick,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of connections accepted so far (monotone; see
    /// [`Server::active_connections`] for the gauge that returns to
    /// baseline).
    pub fn connections_accepted(&self) -> usize {
        self.connections.load(Ordering::Relaxed)
    }

    /// Number of connections currently open.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// A cloneable lifecycle handle (drain requests, gauges) that request
    /// handlers and signal loops can hold without owning the server.
    pub fn control(&self) -> ServeControl {
        ServeControl {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The address the shutdown/drain paths dial to unblock the accept
    /// loop: binding to a wildcard address (`0.0.0.0` / `::`) is common,
    /// but dialing the wildcard is an error on some platforms — dial the
    /// loopback of the same family instead.
    fn unblock_addr(&self) -> SocketAddr {
        let ip = match self.local_addr.ip() {
            ip if !ip.is_unspecified() => ip,
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        };
        SocketAddr::new(ip, self.local_addr.port())
    }

    fn stop_accepting(&mut self) {
        // Unblock the blocking accept by connecting once; the loop
        // re-checks its flags before servicing the dial.
        let _ = TcpStream::connect_timeout(&self.unblock_addr(), Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Gracefully drains the server: stops accepting, answers requests
    /// already in flight, closes idle connections, and waits up to
    /// `deadline` for every connection to go away. Connections still busy
    /// at the deadline are told to close as soon as their current request
    /// completes (the hard-shutdown flag), but are not waited for.
    pub fn drain(&mut self, deadline: Duration) -> DrainReport {
        self.control().begin_drain();
        self.stop_accepting();
        let start = Instant::now();
        while self.shared.active.load(Ordering::Acquire) > 0 && start.elapsed() < deadline {
            thread::sleep(self.tick.min(Duration::from_millis(10)));
        }
        let remaining = self.shared.active.load(Ordering::Acquire);
        self.shared.shutdown.store(true, Ordering::Release);
        DrainReport {
            drained: remaining == 0,
            remaining_connections: remaining,
        }
    }

    /// Signals the accept loop to stop and unblocks it, then gives open
    /// connections a short grace (a few ticks) to observe the flag and
    /// exit. Connections mid-request finish their current request first.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.stop_accepting();
        // Best-effort thread-leak avoidance: idle connections notice the
        // flag within one tick; don't stall shutdown on busy ones.
        let grace = self.tick * 4;
        let start = Instant::now();
        while self.shared.active.load(Ordering::Acquire) > 0 && start.elapsed() < grace {
            thread::sleep(self.tick.min(Duration::from_millis(10)));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Answers an over-cap connection with one `overloaded` error line and a
/// clean close; never spawns a thread or blocks the accept loop for long.
fn shed_connection(stream: TcpStream) {
    crate::obs::serve_conns_rejected_counter().inc();
    let mut stream = stream;
    stream.set_write_timeout(Some(Duration::from_secs(1))).ok();
    let line = format!("{}\n", error_response("overloaded"));
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// What one poll of the bounded line reader produced.
pub(crate) enum Poll {
    /// A complete line (newline stripped), decoded lossily — non-UTF-8
    /// garbage becomes replacement characters and fails JSON parsing with
    /// an ordinary error envelope.
    Line(String),
    /// The peer closed the connection. Any half-written trailing line is
    /// discarded — there is nobody left to answer.
    Eof,
    /// No complete line within one tick; `partial` says whether a frame is
    /// in progress (slow-loris accounting) or the socket is idle.
    Tick { partial: bool },
    /// The in-progress line exceeded the frame cap.
    Oversized,
}

/// A line reader over a `TcpStream` with a hard per-line byte cap and
/// tick-bounded blocking, so the connection loop can watch lifecycle flags
/// while the peer is quiet. Buffers whole recv chunks, so pipelined
/// requests are served back-to-back without extra syscalls.
pub(crate) struct BoundedLineReader {
    pub(crate) stream: TcpStream,
    buf: Vec<u8>,
    max_frame_bytes: usize,
}

impl BoundedLineReader {
    pub(crate) fn new(
        stream: TcpStream,
        max_frame_bytes: usize,
        tick: Duration,
    ) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(tick))?;
        Ok(BoundedLineReader {
            stream,
            buf: Vec::new(),
            max_frame_bytes,
        })
    }

    fn take_line(&mut self) -> Option<String> {
        let idx = self.buf.iter().position(|&b| b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=idx).collect();
        line.pop(); // the newline
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(String::from_utf8_lossy(&line).into_owned())
    }

    pub(crate) fn poll_line(&mut self) -> std::io::Result<Poll> {
        loop {
            if let Some(line) = self.take_line() {
                return Ok(Poll::Line(line));
            }
            if self.buf.len() > self.max_frame_bytes {
                return Ok(Poll::Oversized);
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(Poll::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(Poll::Tick {
                        partial: !self.buf.is_empty(),
                    });
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Lingering close for a connection whose peer may still be writing: stop
/// sending, then read and discard inbound bytes until the peer falls quiet
/// for two ticks, hangs up, or a bounded tick budget runs out. Without
/// this, closing with unread bytes in the receive buffer makes the kernel
/// send an RST, which can destroy a final error line still in flight.
pub(crate) fn linger_close(stream: &TcpStream, tick: Duration, shutdown: &AtomicBool) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(tick.max(Duration::from_millis(1))));
    let mut sink = [0u8; 8192];
    let mut idle_ticks = 0u32;
    for _ in 0..64 {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        match (&mut &*stream).read(&mut sink) {
            Ok(0) => break,
            Ok(_) => idle_ticks = 0,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle_ticks += 1;
                if idle_ticks >= 2 {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Serves one connection with the production limits: request line in,
/// response line out, until EOF, a limit violation, or shutdown/drain.
/// Every request is accounted in the metrics registry (request counter and
/// wall-time histogram by `cmd`, in-flight gauge, error counter), and a
/// panicking handler is answered with an error envelope instead of killing
/// the thread.
fn serve_connection_bounded(
    stream: TcpStream,
    handler: &dyn Handler,
    shared: &Arc<ServeShared>,
    config: &ServeConfig,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    writer.set_write_timeout(config.io_timeout)?;
    let mut reader = BoundedLineReader::new(stream, config.max_frame_bytes, config.tick)?;
    // When the current partial frame started arriving; slow-loris clients
    // are cut off `io_timeout` after their first partial byte.
    let mut frame_started: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match reader.poll_line()? {
            Poll::Eof => break,
            Poll::Oversized => {
                crate::obs::serve_frames_oversized_counter().inc();
                crate::obs::serve_requests_counter("oversized").inc();
                crate::obs::serve_errors_counter("oversized").inc();
                let response = error_response(&format!(
                    "frame too large (limit {} bytes)",
                    config.max_frame_bytes
                ));
                write_line(&mut writer, &response).ok();
                // The peer is mid-send of the oversized frame. Closing now
                // would leave its unread bytes in our receive buffer, and
                // the kernel answers that with an RST that can destroy the
                // error line before the peer reads it. Half-close and drain
                // the remainder (bounded) so the verdict actually arrives.
                linger_close(&reader.stream, config.tick, &shared.shutdown);
                break;
            }
            Poll::Tick { partial: false } => {
                frame_started = None;
                if shared.draining.load(Ordering::Acquire) {
                    // Idle during a drain: close cleanly.
                    break;
                }
            }
            Poll::Tick { partial: true } => {
                let started = *frame_started.get_or_insert_with(Instant::now);
                if let Some(timeout) = config.io_timeout {
                    if started.elapsed() >= timeout {
                        crate::obs::serve_io_timeouts_counter().inc();
                        let response = error_response(&format!(
                            "read timed out mid-frame after {} ms",
                            timeout.as_millis()
                        ));
                        write_line(&mut writer, &response).ok();
                        break;
                    }
                }
            }
            Poll::Line(line) => {
                frame_started = None;
                if line.trim().is_empty() {
                    continue;
                }
                let busy = BusyGuard::enter(shared);
                let (response, request) = answer_line(&line, handler);
                if let Some(request) = &request {
                    if handler.swallow_response(request) {
                        // Deliberate mid-stream hangup: drop the connection
                        // without answering, so the peer sees an EOF where
                        // a response line was due.
                        break;
                    }
                }
                write_line(&mut writer, &response)?;
                drop(busy);
                // The hangup hook runs only after the response has been
                // written and flushed, so a deliberate hangup (or process
                // exit) never swallows its own acknowledgement.
                if let Some(request) = request {
                    if handler.hangup_after(&request) {
                        break;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Parses and handles one request line, with metrics accounting and panic
/// isolation. Returns the response and the parsed request (when any).
fn answer_line(line: &str, handler: &dyn Handler) -> (Json, Option<Json>) {
    match Json::parse(line) {
        Ok(request) => {
            let op = crate::obs::sanitize_op(
                request
                    .get("cmd")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown"),
            );
            crate::obs::serve_requests_counter(&op).inc();
            let inflight = crate::obs::serve_inflight_gauge();
            inflight.add(1.0);
            let started = Instant::now();
            let span = haqjsk_obs::span("serve_request");
            let trace_id = span.trace_id();
            let timer =
                crate::obs::HistogramTimer::start(&crate::obs::serve_request_histogram(&op));
            let response = match catch_unwind(AssertUnwindSafe(|| handler.handle(&request))) {
                Ok(response) => response,
                Err(panic) => {
                    crate::obs::serve_panics_counter().inc();
                    let what = panic_message(panic.as_ref());
                    error_response(&format!("internal error: handler panicked: {what}"))
                }
            };
            drop(timer);
            drop(span);
            inflight.add(-1.0);
            if response.get("error").is_some() {
                crate::obs::serve_errors_counter(&op).inc();
            }
            let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
            haqjsk_obs::record_request(
                &op,
                trace_id,
                started.elapsed(),
                ok,
                response.get("rejected").and_then(Json::as_str),
                response.get("error").and_then(Json::as_str),
            );
            (response, Some(request))
        }
        Err(e) => {
            crate::obs::serve_requests_counter("malformed").inc();
            crate::obs::serve_errors_counter("malformed").inc();
            let message = format!("malformed request: {e}");
            haqjsk_obs::record_request(
                "malformed",
                None,
                Duration::ZERO,
                false,
                None,
                Some(&message),
            );
            (error_response(&message), None)
        }
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn write_line(writer: &mut TcpStream, response: &Json) -> std::io::Result<()> {
    writer.write_all(response.to_string().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Serves one connection with default limits and no lifecycle flags —
/// the embedded/test entry point kept for compatibility; [`Server`] uses
/// the bounded loop internally.
pub fn serve_connection(stream: TcpStream, handler: &dyn Handler) -> std::io::Result<()> {
    serve_connection_bounded(
        stream,
        handler,
        &ServeShared::new(),
        &ServeConfig::default(),
    )
}

/// The standard `{"ok":false,"error":...}` response.
pub fn error_response(message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

/// Serialises a graph for the wire:
/// `{"n":N,"edges":[[u,v],...],"labels":[...]?}`.
pub fn graph_to_json(graph: &Graph) -> Json {
    let edges = graph
        .edges()
        .into_iter()
        .map(|(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
        .collect();
    let mut pairs = vec![
        ("n", Json::Num(graph.num_vertices() as f64)),
        ("edges", Json::Arr(edges)),
    ];
    if let Some(labels) = graph.labels() {
        pairs.push((
            "labels",
            Json::Arr(labels.iter().map(|&l| Json::Num(l as f64)).collect()),
        ));
    }
    Json::obj(pairs)
}

/// Restores a graph from its wire form.
pub fn graph_from_json(value: &Json) -> Result<Graph, String> {
    let n = value
        .get("n")
        .and_then(Json::as_usize)
        .ok_or("graph needs a non-negative integer field 'n'")?;
    let edges_json = value
        .get("edges")
        .and_then(Json::as_array)
        .ok_or("graph needs an array field 'edges'")?;
    let mut edges = Vec::with_capacity(edges_json.len());
    for e in edges_json {
        let pair = e
            .as_array()
            .ok_or("each edge must be a two-element array")?;
        if pair.len() != 2 {
            return Err("each edge must be a two-element array".to_string());
        }
        let u = pair[0].as_usize().ok_or("edge endpoints must be indices")?;
        let v = pair[1].as_usize().ok_or("edge endpoints must be indices")?;
        edges.push((u, v));
    }
    let mut graph = Graph::from_edges(n, &edges).map_err(|e| format!("invalid graph: {e:?}"))?;
    if let Some(labels_json) = value.get("labels") {
        let labels_arr = labels_json
            .as_array()
            .ok_or("'labels' must be an array of integers")?;
        let labels = labels_arr
            .iter()
            .map(|l| l.as_usize().ok_or("labels must be non-negative integers"))
            .collect::<Result<Vec<_>, _>>()?;
        graph
            .set_labels(labels)
            .map_err(|e| format!("invalid labels: {e:?}"))?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, star_graph};
    use std::io::{BufRead, BufReader, Write};

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|request: &Json| {
            let echo = request.get("echo").cloned().unwrap_or(Json::Null);
            Json::obj([("ok", Json::Bool(true)), ("echo", echo)])
        })
    }

    fn fast_config() -> ServeConfig {
        ServeConfig {
            tick: Duration::from_millis(10),
            ..ServeConfig::default()
        }
    }

    fn read_json_line(reader: &mut BufReader<TcpStream>) -> Option<Json> {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(Json::parse(line.trim()).expect("response is valid JSON")),
            Err(_) => None,
        }
    }

    #[test]
    fn graph_json_roundtrip() {
        let mut g = cycle_graph(6);
        g.set_labels(vec![0, 1, 0, 1, 0, 1]).unwrap();
        let wire = graph_to_json(&g);
        let back = graph_from_json(&wire).unwrap();
        assert_eq!(back, g);
        let unlabelled = star_graph(5);
        assert_eq!(
            graph_from_json(&graph_to_json(&unlabelled)).unwrap(),
            unlabelled
        );
    }

    #[test]
    fn graph_from_json_rejects_garbage() {
        assert!(graph_from_json(&Json::Null).is_err());
        assert!(graph_from_json(&Json::parse(r#"{"n":2}"#).unwrap()).is_err());
        assert!(graph_from_json(&Json::parse(r#"{"n":2,"edges":[[0]]}"#).unwrap()).is_err());
        assert!(graph_from_json(&Json::parse(r#"{"n":2,"edges":[[0,5]]}"#).unwrap()).is_err());
    }

    #[test]
    fn server_answers_over_loopback() {
        let mut server =
            Server::spawn_with_config("127.0.0.1:0", echo_handler(), fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer.write_all(b"{\"echo\":41}\n").unwrap();
        let response = read_json_line(&mut reader).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(response.get("echo").and_then(Json::as_f64), Some(41.0));

        // Malformed input keeps the connection alive with an error reply.
        writer.write_all(b"this is not json\n").unwrap();
        let response = read_json_line(&mut reader).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));

        assert!(server.connections_accepted() >= 1);
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let mut server =
            Server::spawn_with_config("127.0.0.1:0", echo_handler(), fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // Several requests in a single write; responses must come back in
        // order, one line each.
        writer
            .write_all(b"{\"echo\":1}\n{\"echo\":2}\n{\"echo\":3}\n")
            .unwrap();
        for expect in 1..=3 {
            let response = read_json_line(&mut reader).unwrap();
            assert_eq!(
                response.get("echo").and_then(Json::as_f64),
                Some(expect as f64)
            );
        }
        server.shutdown();
    }

    #[test]
    fn connection_cap_sheds_with_an_overloaded_line() {
        let config = ServeConfig {
            max_conns: 1,
            ..fast_config()
        };
        let mut server = Server::spawn_with_config("127.0.0.1:0", echo_handler(), config).unwrap();

        // First connection occupies the only slot.
        let first = TcpStream::connect(server.local_addr()).unwrap();
        let mut first_writer = first.try_clone().unwrap();
        let mut first_reader = BufReader::new(first);
        first_writer.write_all(b"{\"echo\":1}\n").unwrap();
        assert!(read_json_line(&mut first_reader).is_some());

        // Second connection: one overloaded line, then EOF.
        let second = TcpStream::connect(server.local_addr()).unwrap();
        let mut second_reader = BufReader::new(second.try_clone().unwrap());
        let shed = read_json_line(&mut second_reader).expect("shed line");
        assert_eq!(shed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(shed.get("error").and_then(Json::as_str), Some("overloaded"));
        assert!(read_json_line(&mut second_reader).is_none(), "clean close");

        // Closing the first frees the slot for a third.
        drop(first_writer);
        drop(first_reader);
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.active_connections() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.active_connections(), 0, "guard returned to baseline");
        let third = TcpStream::connect(server.local_addr()).unwrap();
        let mut third_writer = third.try_clone().unwrap();
        let mut third_reader = BufReader::new(third);
        third_writer.write_all(b"{\"echo\":3}\n").unwrap();
        let response = read_json_line(&mut third_reader).unwrap();
        assert_eq!(response.get("echo").and_then(Json::as_f64), Some(3.0));
        server.shutdown();
    }

    #[test]
    fn oversized_frames_are_rejected_not_buffered() {
        let config = ServeConfig {
            max_frame_bytes: 256,
            ..fast_config()
        };
        let mut server = Server::spawn_with_config("127.0.0.1:0", echo_handler(), config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let oversized = hammer_bytes(1024);
        writer.write_all(&oversized).unwrap();
        let response = read_json_line(&mut reader).expect("error line before close");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert!(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("frame too large"));
        assert!(read_json_line(&mut reader).is_none(), "connection closed");
        server.shutdown();
    }

    /// A newline-free blob larger than any small frame cap.
    fn hammer_bytes(n: usize) -> Vec<u8> {
        std::iter::repeat(b'x').take(n).collect()
    }

    #[test]
    fn slow_loris_partial_frame_is_cut_off() {
        let config = ServeConfig {
            io_timeout: Some(Duration::from_millis(80)),
            ..fast_config()
        };
        let mut server = Server::spawn_with_config("127.0.0.1:0", echo_handler(), config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // Half a frame, then silence: the server must cut us off.
        writer.write_all(b"{\"echo\":").unwrap();
        writer.flush().unwrap();
        let start = Instant::now();
        let response = read_json_line(&mut reader).expect("timeout error line");
        assert!(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("timed out"));
        assert!(read_json_line(&mut reader).is_none(), "connection closed");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cutoff happened promptly"
        );
        server.shutdown();
    }

    #[test]
    fn idle_connections_do_not_time_out_between_frames() {
        let config = ServeConfig {
            io_timeout: Some(Duration::from_millis(60)),
            ..fast_config()
        };
        let mut server = Server::spawn_with_config("127.0.0.1:0", echo_handler(), config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer.write_all(b"{\"echo\":1}\n").unwrap();
        assert!(read_json_line(&mut reader).is_some());
        // Far longer than the I/O timeout, but between frames: keep-alive.
        thread::sleep(Duration::from_millis(250));
        writer.write_all(b"{\"echo\":2}\n").unwrap();
        let response = read_json_line(&mut reader).expect("connection survived idling");
        assert_eq!(response.get("echo").and_then(Json::as_f64), Some(2.0));
        server.shutdown();
    }

    #[test]
    fn handler_panics_are_isolated() {
        let handler: Arc<dyn Handler> = Arc::new(|request: &Json| {
            if request.get("boom").is_some() {
                panic!("deliberate test panic");
            }
            Json::obj([("ok", Json::Bool(true))])
        });
        let before = crate::obs::serve_panics_counter().value();
        let mut server = Server::spawn_with_config("127.0.0.1:0", handler, fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer.write_all(b"{\"boom\":true}\n").unwrap();
        let response = read_json_line(&mut reader).expect("error line, not a dead socket");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        let error = response.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains("internal error"), "got: {error}");
        assert!(error.contains("deliberate test panic"), "got: {error}");
        assert_eq!(crate::obs::serve_panics_counter().value(), before + 1);

        // Same connection still serves.
        writer.write_all(b"{}\n").unwrap();
        let response = read_json_line(&mut reader).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        server.shutdown();
    }

    #[test]
    fn drain_answers_in_flight_then_closes_idle() {
        use std::sync::Mutex;
        // A handler whose requests can be made slow on demand.
        struct Slow {
            delay: Mutex<Duration>,
        }
        impl Handler for Slow {
            fn handle(&self, request: &Json) -> Json {
                if request.get("slow").is_some() {
                    thread::sleep(*self.delay.lock().unwrap());
                }
                Json::obj([("ok", Json::Bool(true))])
            }
        }
        let handler = Arc::new(Slow {
            delay: Mutex::new(Duration::from_millis(200)),
        });
        let mut server = Server::spawn_with_config("127.0.0.1:0", handler, fast_config()).unwrap();
        let control = server.control();

        // An idle connection and a busy one.
        let idle = TcpStream::connect(server.local_addr()).unwrap();
        let busy = TcpStream::connect(server.local_addr()).unwrap();
        let mut busy_writer = busy.try_clone().unwrap();
        let mut busy_reader = BufReader::new(busy);
        busy_writer.write_all(b"{\"slow\":true}\n").unwrap();
        // Let the slow request start before draining.
        thread::sleep(Duration::from_millis(50));

        assert!(!control.is_draining());
        let report = server.drain(Duration::from_secs(5));
        assert!(control.is_draining());
        assert!(report.drained, "drain completed: {report:?}");
        assert_eq!(server.active_connections(), 0);

        // The in-flight slow request was answered before its connection
        // closed.
        let response = read_json_line(&mut busy_reader).expect("in-flight request answered");
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert!(read_json_line(&mut busy_reader).is_none(), "then closed");

        // The idle connection observes a plain close.
        let mut idle_reader = BufReader::new(idle);
        assert!(read_json_line(&mut idle_reader).is_none());

        // New connections are refused (listener is gone).
        assert!(
            TcpStream::connect_timeout(&server.local_addr(), Duration::from_millis(500))
                .map(|s| {
                    // Platform may accept briefly in the backlog; a read must EOF.
                    let mut reader = BufReader::new(s);
                    read_json_line(&mut reader).is_none()
                })
                .unwrap_or(true)
        );
    }

    #[test]
    fn serve_config_env_parsing() {
        // from_env with nothing set yields the defaults (other tests may
        // set these vars, so only check the pure parser paths here).
        let default = ServeConfig::default();
        assert!(default.max_conns >= 64);
        assert!(default.max_frame_bytes >= 1 << 20);
        assert!(default.io_timeout.is_some());
    }
}
