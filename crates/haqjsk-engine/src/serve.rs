//! The JSON-lines TCP serving substrate.
//!
//! Protocol: one JSON object per line, one response line per request, over a
//! plain `TcpStream`. The engine provides the transport loop and graph
//! (de)serialisation; the `haqjsk-serve` binary (umbrella crate) wires in
//! the model-level handlers (fit / transform / predict / save / load).
//!
//! ```text
//! -> {"cmd":"ping"}
//! <- {"ok":true,"pong":true}
//! -> {"cmd":"fit","graphs":[{"n":4,"edges":[[0,1],[1,2],[2,3]]}, ...],"variant":"A"}
//! <- {"ok":true,"num_graphs":32,"levels":3}
//! ```
//!
//! Malformed lines never kill the connection: they produce
//! `{"ok":false,"error":"..."}` responses.

use crate::json::Json;
use haqjsk_graph::Graph;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// A request handler: maps one request value to one response value. Must be
/// shareable across connection threads.
pub trait Handler: Send + Sync + 'static {
    /// Handles a single request.
    fn handle(&self, request: &Json) -> Json;

    /// Whether the connection should be closed after the response to
    /// `request` has been written — the hook fault-injection and shutdown
    /// commands use to hang up deliberately (the distributed worker's
    /// chaos knob relies on it). The default keeps every connection open.
    fn hangup_after(&self, _request: &Json) -> bool {
        false
    }

    /// Whether the response to `request` should be *swallowed*: the
    /// connection closes immediately without writing anything, so the peer
    /// observes a mid-stream EOF instead of a reply. The distributed
    /// worker's chaos harness uses this to simulate a worker dying between
    /// receiving a request and answering it. The default never swallows.
    fn swallow_response(&self, _request: &Json) -> bool {
        false
    }
}

impl<F> Handler for F
where
    F: Fn(&Json) -> Json + Send + Sync + 'static,
{
    fn handle(&self, request: &Json) -> Json {
        self(request)
    }
}

/// A running server: the listener address plus shutdown/bookkeeping handles.
pub struct Server {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicUsize>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
    /// `handler` on a background accept thread, one thread per connection.
    pub fn spawn(addr: &str, handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let accept_thread = thread::Builder::new()
            .name("haqjsk-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // One JSON line per request/response: Nagle + delayed
                    // ACK would add tens of milliseconds per exchange.
                    stream.set_nodelay(true).ok();
                    accept_connections.fetch_add(1, Ordering::Relaxed);
                    crate::obs::serve_connections_counter().inc();
                    let handler = Arc::clone(&handler);
                    let _ = thread::Builder::new()
                        .name("haqjsk-serve-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(stream, handler.as_ref());
                        });
                }
            })?;

        Ok(Server {
            local_addr,
            shutdown,
            connections,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Number of connections accepted so far.
    pub fn connections_accepted(&self) -> usize {
        self.connections.load(Ordering::Relaxed)
    }

    /// Signals the accept loop to stop and unblocks it with a dummy
    /// connection. Existing connections finish naturally.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the blocking accept by connecting once.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Serves one connection: request line in, response line out, until EOF.
/// Every request is accounted in the metrics registry: a request counter
/// and wall-time histogram labelled by the request's `cmd`, an in-flight
/// gauge, and an error counter for responses carrying the error envelope.
pub fn serve_connection(stream: TcpStream, handler: &dyn Handler) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, request) = match Json::parse(&line) {
            Ok(request) => {
                let op = crate::obs::sanitize_op(
                    request
                        .get("cmd")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown"),
                );
                crate::obs::serve_requests_counter(&op).inc();
                let inflight = crate::obs::serve_inflight_gauge();
                inflight.add(1.0);
                let _span = haqjsk_obs::span("serve_request");
                let timer =
                    crate::obs::HistogramTimer::start(&crate::obs::serve_request_histogram(&op));
                let response = handler.handle(&request);
                drop(timer);
                inflight.add(-1.0);
                if response.get("error").is_some() {
                    crate::obs::serve_errors_counter(&op).inc();
                }
                (response, Some(request))
            }
            Err(e) => {
                crate::obs::serve_requests_counter("malformed").inc();
                crate::obs::serve_errors_counter("malformed").inc();
                (error_response(&format!("malformed request: {e}")), None)
            }
        };
        if let Some(request) = &request {
            if handler.swallow_response(request) {
                // Deliberate mid-stream hangup: drop the connection without
                // answering, so the peer sees an EOF where a response line
                // was due.
                break;
            }
        }
        writer.write_all(response.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        // The hangup hook runs only after the response has been written
        // and flushed, so a deliberate hangup (or process exit) never
        // swallows its own acknowledgement.
        if let Some(request) = request {
            if handler.hangup_after(&request) {
                break;
            }
        }
    }
    Ok(())
}

/// The standard `{"ok":false,"error":...}` response.
pub fn error_response(message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

/// Serialises a graph for the wire:
/// `{"n":N,"edges":[[u,v],...],"labels":[...]?}`.
pub fn graph_to_json(graph: &Graph) -> Json {
    let edges = graph
        .edges()
        .into_iter()
        .map(|(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
        .collect();
    let mut pairs = vec![
        ("n", Json::Num(graph.num_vertices() as f64)),
        ("edges", Json::Arr(edges)),
    ];
    if let Some(labels) = graph.labels() {
        pairs.push((
            "labels",
            Json::Arr(labels.iter().map(|&l| Json::Num(l as f64)).collect()),
        ));
    }
    Json::obj(pairs)
}

/// Restores a graph from its wire form.
pub fn graph_from_json(value: &Json) -> Result<Graph, String> {
    let n = value
        .get("n")
        .and_then(Json::as_usize)
        .ok_or("graph needs a non-negative integer field 'n'")?;
    let edges_json = value
        .get("edges")
        .and_then(Json::as_array)
        .ok_or("graph needs an array field 'edges'")?;
    let mut edges = Vec::with_capacity(edges_json.len());
    for e in edges_json {
        let pair = e
            .as_array()
            .ok_or("each edge must be a two-element array")?;
        if pair.len() != 2 {
            return Err("each edge must be a two-element array".to_string());
        }
        let u = pair[0].as_usize().ok_or("edge endpoints must be indices")?;
        let v = pair[1].as_usize().ok_or("edge endpoints must be indices")?;
        edges.push((u, v));
    }
    let mut graph = Graph::from_edges(n, &edges).map_err(|e| format!("invalid graph: {e:?}"))?;
    if let Some(labels_json) = value.get("labels") {
        let labels_arr = labels_json
            .as_array()
            .ok_or("'labels' must be an array of integers")?;
        let labels = labels_arr
            .iter()
            .map(|l| l.as_usize().ok_or("labels must be non-negative integers"))
            .collect::<Result<Vec<_>, _>>()?;
        graph
            .set_labels(labels)
            .map_err(|e| format!("invalid labels: {e:?}"))?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, star_graph};
    use std::io::{BufRead, BufReader, Write};

    #[test]
    fn graph_json_roundtrip() {
        let mut g = cycle_graph(6);
        g.set_labels(vec![0, 1, 0, 1, 0, 1]).unwrap();
        let wire = graph_to_json(&g);
        let back = graph_from_json(&wire).unwrap();
        assert_eq!(back, g);
        let unlabelled = star_graph(5);
        assert_eq!(
            graph_from_json(&graph_to_json(&unlabelled)).unwrap(),
            unlabelled
        );
    }

    #[test]
    fn graph_from_json_rejects_garbage() {
        assert!(graph_from_json(&Json::Null).is_err());
        assert!(graph_from_json(&Json::parse(r#"{"n":2}"#).unwrap()).is_err());
        assert!(graph_from_json(&Json::parse(r#"{"n":2,"edges":[[0]]}"#).unwrap()).is_err());
        assert!(graph_from_json(&Json::parse(r#"{"n":2,"edges":[[0,5]]}"#).unwrap()).is_err());
    }

    #[test]
    fn server_answers_over_loopback() {
        let handler: Arc<dyn Handler> = Arc::new(|request: &Json| {
            let echo = request.get("echo").cloned().unwrap_or(Json::Null);
            Json::obj([("ok", Json::Bool(true)), ("echo", echo)])
        });
        let mut server = Server::spawn("127.0.0.1:0", handler).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer.write_all(b"{\"echo\":41}\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response = Json::parse(line.trim()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(response.get("echo").and_then(Json::as_f64), Some(41.0));

        // Malformed input keeps the connection alive with an error reply.
        line.clear();
        writer.write_all(b"this is not json\n").unwrap();
        reader.read_line(&mut line).unwrap();
        let response = Json::parse(line.trim()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));

        assert!(server.connections_accepted() >= 1);
        server.shutdown();
    }
}
