//! Engine-side observability wiring: cached handles for the engine's own
//! metrics (Gram build time, tile latency, pool queue depth, serve request
//! accounting) and the [`Snapshot`] → [`Json`] conversion the serving
//! layer's `metrics`/`stats` operations use.
//!
//! Handles are resolved once through `OnceLock`s so the hot paths never
//! take the registry lock; per-request serve metrics go through the
//! registry's keyed lookup (one mutex acquisition per network round-trip,
//! which is noise next to the socket I/O).

use crate::backend::BackendKind;
use crate::json::Json;
use haqjsk_obs::metrics::{registry, Counter, Gauge, Histogram, MetricValue, Snapshot};
use std::sync::OnceLock;
use std::time::Instant;

/// Histogram of wall-clock Gram build time, labelled by backend.
pub fn gram_build_histogram(backend: BackendKind) -> &'static Histogram {
    static HISTOGRAMS: OnceLock<[Histogram; 4]> = OnceLock::new();
    let all = HISTOGRAMS.get_or_init(|| {
        let make = |kind: BackendKind| {
            registry().histogram(
                "haqjsk_gram_build_seconds",
                "Wall-clock time of one Gram matrix build, by execution backend.",
                &[("backend", kind.label())],
            )
        };
        [
            make(BackendKind::Serial),
            make(BackendKind::TiledPool),
            make(BackendKind::BatchedTile),
            make(BackendKind::Distributed),
        ]
    });
    match backend {
        BackendKind::Serial => &all[0],
        BackendKind::TiledPool => &all[1],
        BackendKind::BatchedTile => &all[2],
        BackendKind::Distributed => &all[3],
    }
}

/// Histogram of per-tile evaluation latency on the pooled Gram paths.
pub fn tile_eval_histogram() -> &'static Histogram {
    static HISTOGRAM: OnceLock<Histogram> = OnceLock::new();
    HISTOGRAM.get_or_init(|| {
        registry().histogram(
            "haqjsk_tile_eval_seconds",
            "Wall-clock time of one Gram tile evaluation on the worker pool.",
            &[],
        )
    })
}

/// Gauge of jobs currently queued in the worker pool.
pub fn pool_queue_depth_gauge() -> &'static Gauge {
    static GAUGE: OnceLock<Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        registry().gauge(
            "haqjsk_pool_queue_depth",
            "Jobs currently queued in the worker pool.",
            &[],
        )
    })
}

/// Counter of jobs ever submitted to the worker pool.
pub fn pool_jobs_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter(
            "haqjsk_pool_jobs_total",
            "Jobs submitted to the worker pool.",
            &[],
        )
    })
}

/// RAII timer recording into a histogram on drop — the per-Gram build
/// instrumentation (one `Instant` pair per Gram matrix, nothing per pair).
pub struct HistogramTimer {
    histogram: Histogram,
    start: Instant,
}

impl HistogramTimer {
    /// Starts timing into `histogram`.
    pub fn start(histogram: &Histogram) -> HistogramTimer {
        HistogramTimer {
            histogram: histogram.clone(),
            start: Instant::now(),
        }
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}

// ---------------------------------------------------------------------------
// Serve request accounting
// ---------------------------------------------------------------------------

/// Maximum length of an `op` label value; longer command names truncate.
const MAX_OP_LEN: usize = 32;

/// Maps a request command to a bounded-cardinality `op` label value:
/// lower-cased, non-`[a-z0-9_]` characters replaced with `_`, truncated.
pub fn sanitize_op(cmd: &str) -> String {
    let mut out = String::with_capacity(cmd.len().min(MAX_OP_LEN));
    for c in cmd.chars().take(MAX_OP_LEN) {
        let c = c.to_ascii_lowercase();
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    if out.is_empty() {
        out.push_str("unknown");
    }
    out
}

/// Counter of requests served, by operation.
pub fn serve_requests_counter(op: &str) -> Counter {
    registry().counter(
        "haqjsk_serve_requests_total",
        "Requests handled by the serving loop, by operation.",
        &[("op", op)],
    )
}

/// Histogram of request wall time, by operation.
pub fn serve_request_histogram(op: &str) -> Histogram {
    registry().histogram(
        "haqjsk_serve_request_seconds",
        "Wall-clock time spent handling one request, by operation.",
        &[("op", op)],
    )
}

/// Counter of error responses, by operation.
pub fn serve_errors_counter(op: &str) -> Counter {
    registry().counter(
        "haqjsk_serve_errors_total",
        "Requests answered with an error envelope, by operation.",
        &[("op", op)],
    )
}

/// Gauge of requests currently being handled.
pub fn serve_inflight_gauge() -> &'static Gauge {
    static GAUGE: OnceLock<Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        registry().gauge(
            "haqjsk_serve_inflight",
            "Requests currently being handled.",
            &[],
        )
    })
}

/// Counter of connections accepted by the serving loop.
pub fn serve_connections_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter(
            "haqjsk_serve_connections_total",
            "Connections accepted by the serving loop.",
            &[],
        )
    })
}

/// Gauge of connections currently open (incremented on accept, decremented
/// by the connection guard on close — unlike the accepted-connections
/// counter, this returns to baseline when clients disconnect).
pub fn serve_active_connections_gauge() -> &'static Gauge {
    static GAUGE: OnceLock<Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        registry().gauge(
            "haqjsk_serve_active_connections",
            "Connections currently open on the serving loop.",
            &[],
        )
    })
}

/// Counter of connections rejected at accept time because the concurrent
/// connection cap (`HAQJSK_SERVE_MAX_CONNS`) was reached.
pub fn serve_conns_rejected_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter(
            "haqjsk_serve_conns_rejected_total",
            "Connections shed at accept time by the connection cap.",
            &[],
        )
    })
}

/// Counter of frames rejected for exceeding `HAQJSK_SERVE_MAX_FRAME_BYTES`.
pub fn serve_frames_oversized_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter(
            "haqjsk_serve_frames_oversized_total",
            "Request frames rejected for exceeding the frame-size cap.",
            &[],
        )
    })
}

/// Counter of connections closed because a partially received frame made
/// no progress within the per-socket I/O timeout (slow-loris defense).
pub fn serve_io_timeouts_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter(
            "haqjsk_serve_io_timeouts_total",
            "Connections closed for stalling mid-frame past the I/O timeout.",
            &[],
        )
    })
}

/// Counter of handler panics caught by the connection loop's panic
/// isolation (the process keeps serving; the request gets an error line).
pub fn serve_panics_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter(
            "haqjsk_serve_panics_total",
            "Handler panics caught and answered with an error envelope.",
            &[],
        )
    })
}

/// Counter of heavy requests shed by admission control, by operation.
pub fn serve_rejected_counter(op: &str) -> Counter {
    registry().counter(
        "haqjsk_serve_rejected_total",
        "Heavy requests shed by admission control, by operation.",
        &[("op", op)],
    )
}

/// Counter of requests that exceeded their deadline, by operation.
pub fn serve_deadline_exceeded_counter(op: &str) -> Counter {
    registry().counter(
        "haqjsk_serve_deadline_exceeded_total",
        "Requests answered with deadline_exceeded, by operation.",
        &[("op", op)],
    )
}

// ---------------------------------------------------------------------------
// HTTP scrape endpoint accounting
// ---------------------------------------------------------------------------

/// Counter of HTTP requests answered, by (bounded) path label and status.
pub fn http_requests_counter(path: &str, status: u16) -> Counter {
    registry().counter(
        "haqjsk_http_requests_total",
        "HTTP requests answered by the scrape endpoint, by path and status.",
        &[("path", path), ("status", &status.to_string())],
    )
}

/// Gauge of HTTP connections currently open (returns to baseline when
/// clients disconnect).
pub fn http_active_connections_gauge() -> &'static Gauge {
    static GAUGE: OnceLock<Gauge> = OnceLock::new();
    GAUGE.get_or_init(|| {
        registry().gauge(
            "haqjsk_http_active_connections",
            "Connections currently open on the HTTP scrape endpoint.",
            &[],
        )
    })
}

/// Counter of HTTP connections accepted.
pub fn http_connections_counter() -> &'static Counter {
    static COUNTER: OnceLock<Counter> = OnceLock::new();
    COUNTER.get_or_init(|| {
        registry().counter(
            "haqjsk_http_connections_total",
            "Connections accepted by the HTTP scrape endpoint.",
            &[],
        )
    })
}

/// One-hot serving-state gauge: exactly one of
/// `haqjsk_serve_state{state="serving"}` and
/// `haqjsk_serve_state{state="draining"}` is 1.
pub fn set_serve_state(draining: bool) {
    static STATES: OnceLock<[Gauge; 2]> = OnceLock::new();
    let [serving, drain] = STATES.get_or_init(|| {
        let make = |state: &str| {
            registry().gauge(
                "haqjsk_serve_state",
                "Serving-loop lifecycle state (one-hot by 'state' label).",
                &[("state", state)],
            )
        };
        [make("serving"), make("draining")]
    });
    serving.set(if draining { 0.0 } else { 1.0 });
    drain.set(if draining { 1.0 } else { 0.0 });
}

// ---------------------------------------------------------------------------
// Snapshot -> Json
// ---------------------------------------------------------------------------

fn labels_to_json(labels: &[(String, String)]) -> Json {
    Json::Obj(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

/// Converts a registry snapshot to the engine's [`Json`] value: an array of
/// `{name, kind, labels, ...}` objects, histograms summarised as
/// count/sum/min/max/mean and the p50/p90/p99 estimates.
pub fn snapshot_to_json(snapshot: &Snapshot) -> Json {
    let metrics = snapshot
        .entries
        .iter()
        .map(|entry| {
            let mut pairs = vec![
                ("name", Json::Str(entry.name.clone())),
                ("kind", Json::Str(entry.kind.as_str().to_string())),
                ("labels", labels_to_json(&entry.labels)),
            ];
            match &entry.value {
                MetricValue::Counter(v) => pairs.push(("value", Json::Num(*v as f64))),
                MetricValue::Gauge(v) => pairs.push(("value", Json::Num(*v))),
                MetricValue::Histogram(h) => {
                    pairs.push(("count", Json::Num(h.count as f64)));
                    pairs.push(("sum", Json::Num(h.sum)));
                    if h.count > 0 {
                        pairs.push(("min", Json::Num(h.min)));
                        pairs.push(("max", Json::Num(h.max)));
                        pairs.push(("mean", Json::Num(h.mean())));
                        pairs.push(("p50", Json::Num(h.quantile(0.5))));
                        pairs.push(("p90", Json::Num(h.quantile(0.9))));
                        pairs.push(("p99", Json::Num(h.quantile(0.99))));
                    }
                }
            }
            Json::obj(pairs)
        })
        .collect();
    Json::Arr(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_op_bounds_cardinality() {
        assert_eq!(sanitize_op("kernel_row"), "kernel_row");
        assert_eq!(sanitize_op("Kernel-Row!"), "kernel_row_");
        assert_eq!(sanitize_op(""), "unknown");
        assert!(sanitize_op(&"x".repeat(200)).len() <= MAX_OP_LEN);
    }

    #[test]
    fn snapshot_converts_to_json() {
        let op = "obs_unit_test";
        serve_requests_counter(op).inc();
        serve_request_histogram(op).observe(0.002);
        let json = snapshot_to_json(&registry().snapshot());
        let rendered = json.to_string();
        assert!(rendered.contains("haqjsk_serve_requests_total"));
        assert!(rendered.contains("haqjsk_serve_request_seconds"));
        assert!(rendered.contains(op));
    }
}
