//! Memoisation of expensive per-graph features — sharded, budgeted, LRU.
//!
//! The HAQJSK pipeline's cost is dominated by per-*pair* kernel evaluations,
//! but the per-*graph* inputs to those evaluations — CTQW density matrices
//! (`O(n^3)` eigendecompositions), depth-based vertex representations,
//! aligned structure families — are reusable across every pair and every
//! request that involves the same graph. [`FeatureCache`] memoises them
//! under a [`GraphKey`](crate::hash::GraphKey) and guarantees each value is
//! computed **exactly once per resident key** even under concurrent access.
//!
//! Two properties make the cache production-shaped rather than a plain
//! mutex-guarded map:
//!
//! * **Key-range sharding.** The key space (the upper 64 bits of the
//!   structural hash) is partitioned into [`CacheConfig::shards`]
//!   contiguous ranges, each guarded by its own mutex, so concurrent
//!   lookups for different graphs rarely contend on one lock.
//! * **Frequency-gated admission (optional).** Under
//!   [`AdmissionPolicy::TinyLfu`] each shard keeps a compact frequency
//!   sketch (doorkeeper Bloom filter + 4-bit count-min counters) and only
//!   lets a freshly computed value displace the LRU victim when the
//!   newcomer's estimated frequency is at least the victim's — so a scan of
//!   one-hit wonders cannot flush a shard of hot entries. Select with
//!   `HAQJSK_CACHE_ADMISSION=tinylfu` or [`CacheConfig::admission`];
//!   rejected admissions are counted per shard.
//! * **Budgeted LRU eviction.** Each shard tracks an intrusive LRU list and
//!   the approximate resident bytes of its values (via the [`CacheWeight`]
//!   trait). When a total byte budget is configured, inserts that push a
//!   shard over its slice of the budget evict least-recently-used entries
//!   until it fits — so long-running serving processes handle unbounded
//!   graph streams with bounded memory. Evicted values stay alive for
//!   callers already holding their `Arc`; only residency is bounded.
//!
//! The exactly-once guarantee is scoped to residency: while a key stays
//! resident, concurrent requests for it block on the first compute instead
//! of recomputing; once evicted, a later request recomputes (and the
//! eviction counters make that observable).

use crate::hash::GraphKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Approximate resident size of a cached value, in bytes.
///
/// Implementations should count the value's owned heap data plus its inline
/// size; exact malloc-level accounting is not required — budgets are
/// capacity planning, not allocation control. The default counts only the
/// inline size, which is right for plain scalar types.
pub trait CacheWeight {
    /// Approximate bytes this value keeps resident.
    fn weight(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

macro_rules! inline_weight {
    ($($t:ty),*) => {$(
        impl CacheWeight for $t {}
    )*};
}

inline_weight!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool);

impl CacheWeight for String {
    fn weight(&self) -> usize {
        std::mem::size_of::<String>() + self.capacity()
    }
}

impl<T: CacheWeight> CacheWeight for Vec<T> {
    fn weight(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(CacheWeight::weight).sum::<usize>()
    }
}

impl<T: CacheWeight> CacheWeight for Arc<T> {
    fn weight(&self) -> usize {
        std::mem::size_of::<Arc<T>>() + T::weight(self)
    }
}

impl CacheWeight for haqjsk_linalg::Matrix {
    fn weight(&self) -> usize {
        std::mem::size_of::<haqjsk_linalg::Matrix>()
            + self.rows() * self.cols() * std::mem::size_of::<f64>()
    }
}

/// Environment variable overriding the shard count of environment-configured
/// caches (see [`CacheConfig::from_env`]).
pub const CACHE_SHARDS_ENV_VAR: &str = "HAQJSK_CACHE_SHARDS";

/// Environment variable overriding the byte budget of environment-configured
/// caches; accepts plain bytes or `k`/`m`/`g` suffixes (e.g. `256m`).
pub const CACHE_BUDGET_ENV_VAR: &str = "HAQJSK_CACHE_BUDGET";

/// Environment variable selecting the admission policy of
/// environment-configured caches: `lru` (default) or `tinylfu`.
pub const CACHE_ADMISSION_ENV_VAR: &str = "HAQJSK_CACHE_ADMISSION";

const DEFAULT_SHARDS: usize = 8;

/// What happens when an insert pushes a shard over its byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdmissionPolicy {
    /// Always admit the newcomer; evict from the LRU tail until the shard
    /// fits (the classic behavior).
    #[default]
    Lru,
    /// TinyLFU-style frequency gating: each shard keeps a compact
    /// frequency sketch (doorkeeper Bloom filter + 4-bit count-min
    /// counters) over the keys it has seen; a newcomer is admitted only
    /// while its estimated frequency is **at least** the LRU victim's.
    /// A one-hit-wonder can no longer flush a shard of hot entries.
    TinyLfu,
}

impl AdmissionPolicy {
    /// The canonical lower-case label (`lru` / `tinylfu`).
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Lru => "lru",
            AdmissionPolicy::TinyLfu => "tinylfu",
        }
    }

    /// Parses an admission-policy label.
    pub fn parse(raw: &str) -> Option<AdmissionPolicy> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "lru" => Some(AdmissionPolicy::Lru),
            "tinylfu" | "tiny_lfu" | "lfu" => Some(AdmissionPolicy::TinyLfu),
            _ => None,
        }
    }
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shard count, byte budget and admission policy of a [`FeatureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of key-range shards (clamped to at least 1).
    pub shards: usize,
    /// Total byte budget across all shards; `None` = unbounded. Each shard
    /// enforces `budget / shards` (floor), so budgets should be large
    /// relative to the shard count and the per-value weight.
    pub budget_bytes: Option<usize>,
    /// What happens when an insert pushes a shard over budget (only
    /// relevant with a budget configured).
    pub admission: AdmissionPolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: DEFAULT_SHARDS,
            budget_bytes: None,
            admission: AdmissionPolicy::Lru,
        }
    }
}

impl CacheConfig {
    /// Default shards, no budget.
    pub fn unbounded() -> Self {
        CacheConfig::default()
    }

    /// Default shards with a total byte budget.
    pub fn with_budget(budget_bytes: usize) -> Self {
        CacheConfig {
            budget_bytes: Some(budget_bytes),
            ..CacheConfig::default()
        }
    }

    /// Reads `HAQJSK_CACHE_SHARDS` and `HAQJSK_CACHE_BUDGET` on top of the
    /// defaults — how the process-global caches configure themselves.
    pub fn from_env() -> Self {
        let mut config = CacheConfig::default();
        if let Ok(raw) = std::env::var(CACHE_SHARDS_ENV_VAR) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    config.shards = n;
                }
            }
        }
        if let Ok(raw) = std::env::var(CACHE_BUDGET_ENV_VAR) {
            config.budget_bytes = parse_byte_size(&raw);
        }
        if let Ok(raw) = std::env::var(CACHE_ADMISSION_ENV_VAR) {
            if let Some(policy) = AdmissionPolicy::parse(&raw) {
                config.admission = policy;
            }
        }
        config
    }
}

/// Parses `"1024"`, `"64k"`, `"256m"`, `"2g"` (case-insensitive) to bytes.
pub fn parse_byte_size(raw: &str) -> Option<usize> {
    let raw = raw.trim().to_ascii_lowercase();
    let (digits, multiplier) = match raw.strip_suffix(['k', 'm', 'g']) {
        Some(prefix) => {
            let multiplier = match raw.as_bytes()[raw.len() - 1] {
                b'k' => 1usize << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            };
            (prefix, multiplier)
        }
        None => (raw.as_str(), 1),
    };
    digits
        .trim()
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
}

/// Aggregate hit/miss/eviction counters of a [`FeatureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to compute the value.
    pub misses: usize,
    /// Number of distinct keys currently resident.
    pub entries: usize,
    /// Entries evicted to satisfy the budget since creation (or since the
    /// last [`FeatureCache::clear`], which resets this counter).
    pub evictions: usize,
    /// Freshly computed values the TinyLFU admission gate declined to keep
    /// resident (the caller still received the value; it was simply not
    /// worth displacing a hotter victim). Always zero under
    /// [`AdmissionPolicy::Lru`].
    pub admission_rejects: usize,
    /// Approximate bytes currently resident across all shards.
    pub resident_bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-shard counters, for observability (`stats` serving responses, the
/// scaling benchmark) and for the eviction property tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Distinct keys resident in this shard.
    pub entries: usize,
    /// Lookups this shard answered from cache.
    pub hits: usize,
    /// Lookups this shard had to compute.
    pub misses: usize,
    /// Entries this shard evicted.
    pub evictions: usize,
    /// Values this shard's admission gate declined to keep resident.
    pub admission_rejects: usize,
    /// Approximate resident bytes in this shard.
    pub resident_bytes: usize,
    /// This shard's slice of the budget; `None` = unbounded.
    pub budget_bytes: Option<usize>,
}

/// A compact per-shard frequency sketch: a doorkeeper Bloom filter that
/// absorbs one-hit wonders, backed by 4-bit count-min counters (4 hash
/// functions) for keys seen more than once. Counters are halved (and the
/// doorkeeper reset) every [`FrequencySketch::sample`] recorded accesses so
/// estimates track *recent* popularity — the standard TinyLFU aging scheme.
pub struct FrequencySketch {
    /// Two 4-bit counters per byte; `SKETCH_COUNTERS` logical slots.
    counters: Vec<u8>,
    /// Doorkeeper bitset (`DOORKEEPER_BITS` bits).
    doorkeeper: Vec<u64>,
    /// Accesses recorded since the last aging pass.
    increments: usize,
    /// Aging period.
    sample: usize,
}

/// Logical 4-bit counter slots per shard sketch (power of two; 4 KiB).
const SKETCH_COUNTERS: usize = 8192;
/// Doorkeeper bits per shard sketch (1 KiB).
const DOORKEEPER_BITS: usize = 8192;
/// Seeds of the four count-min hash functions and the doorkeeper hash.
const SKETCH_SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
];
const DOORKEEPER_SEED: u64 = 0x5851_F42D_4C95_7F2D;

fn sketch_mix(key: GraphKey, seed: u64) -> u64 {
    let mut x = (key.0 as u64) ^ ((key.0 >> 64) as u64) ^ seed;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Default for FrequencySketch {
    fn default() -> Self {
        FrequencySketch::new()
    }
}

impl FrequencySketch {
    /// An empty sketch (all frequencies zero).
    pub fn new() -> Self {
        FrequencySketch {
            counters: vec![0u8; SKETCH_COUNTERS / 2],
            doorkeeper: vec![0u64; DOORKEEPER_BITS / 64],
            increments: 0,
            sample: SKETCH_COUNTERS * 4,
        }
    }

    fn counter(&self, slot: usize) -> u32 {
        let byte = self.counters[slot >> 1];
        u32::from(if slot & 1 == 0 {
            byte & 0x0F
        } else {
            byte >> 4
        })
    }

    fn bump(&mut self, slot: usize) {
        let byte = &mut self.counters[slot >> 1];
        if slot & 1 == 0 {
            if *byte & 0x0F < 0x0F {
                *byte += 1;
            }
        } else if *byte >> 4 < 0x0F {
            *byte += 0x10;
        }
    }

    fn doorkeeper_slot(key: GraphKey) -> usize {
        sketch_mix(key, DOORKEEPER_SEED) as usize % DOORKEEPER_BITS
    }

    fn doorkeeper_contains(&self, key: GraphKey) -> bool {
        let bit = Self::doorkeeper_slot(key);
        self.doorkeeper[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Records one access to `key`.
    pub fn record(&mut self, key: GraphKey) {
        let bit = Self::doorkeeper_slot(key);
        let word = &mut self.doorkeeper[bit / 64];
        let mask = 1u64 << (bit % 64);
        if *word & mask == 0 {
            // First sighting (this aging period): the doorkeeper absorbs it
            // without touching the counters.
            *word |= mask;
        } else {
            for seed in SKETCH_SEEDS {
                let slot = sketch_mix(key, seed) as usize & (SKETCH_COUNTERS - 1);
                self.bump(slot);
            }
        }
        self.increments += 1;
        if self.increments >= self.sample {
            self.age();
        }
    }

    /// The estimated access frequency of `key` this aging period.
    pub fn estimate(&self, key: GraphKey) -> u32 {
        let min = SKETCH_SEEDS
            .iter()
            .map(|&seed| self.counter(sketch_mix(key, seed) as usize & (SKETCH_COUNTERS - 1)))
            .min()
            .unwrap_or(0);
        min + u32::from(self.doorkeeper_contains(key))
    }

    /// Halves every counter and resets the doorkeeper, so stale popularity
    /// decays instead of pinning entries forever.
    fn age(&mut self) {
        for byte in &mut self.counters {
            *byte = (*byte >> 1) & 0x77;
        }
        self.doorkeeper.fill(0);
        self.increments = 0;
    }
}

const NIL: usize = usize::MAX;

/// One node of a shard's intrusive LRU list, slab-allocated so that map
/// entries can hold a stable index instead of a pointer.
struct LruNode {
    key: GraphKey,
    prev: usize,
    next: usize,
}

/// Doubly linked LRU order over a slab of nodes: head = most recently
/// used, tail = eviction candidate.
pub struct LruList {
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Default for LruList {
    fn default() -> Self {
        LruList::new()
    }
}

impl LruList {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Inserts `key` at the front (most recently used); returns the node's
    /// stable slab index for [`LruList::touch`] / [`LruList::remove`].
    pub fn push_front(&mut self, key: GraphKey) -> usize {
        let node = LruNode {
            key,
            prev: NIL,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.nodes[idx] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        idx
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Removes the node and recycles its slot; returns its key.
    pub fn remove(&mut self, idx: usize) -> GraphKey {
        self.unlink(idx);
        self.free.push(idx);
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
        self.nodes[idx].key
    }

    /// Moves the node to the front (most recently used).
    pub fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// The least-recently-used key (the next eviction candidate).
    pub fn tail_key(&self) -> Option<GraphKey> {
        (self.tail != NIL).then(|| self.nodes[self.tail].key)
    }

    /// The slab index of the least-recently-used node.
    pub fn tail_idx(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// The next node toward the most-recently-used end — walks the list in
    /// eviction-priority order when started from [`LruList::tail_idx`].
    /// The index must name a live node.
    pub fn toward_head(&self, idx: usize) -> Option<usize> {
        let prev = self.nodes[idx].prev;
        (prev != NIL).then_some(prev)
    }

    /// The key stored at a live node index.
    pub fn key_at(&self, idx: usize) -> GraphKey {
        self.nodes[idx].key
    }
}

/// One resident (or in-flight) cache entry. `weight == 0` means the value
/// is still being computed and has not been accounted yet.
struct Entry<V> {
    slot: Arc<OnceLock<Arc<V>>>,
    weight: usize,
    node: usize,
}

struct ShardState<V> {
    entries: HashMap<GraphKey, Entry<V>>,
    lru: LruList,
    resident_bytes: usize,
    evictions: usize,
    admission_rejects: usize,
    /// Present only under [`AdmissionPolicy::TinyLfu`].
    sketch: Option<FrequencySketch>,
}

struct Shard<V> {
    state: Mutex<ShardState<V>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<V> Shard<V> {
    fn new(admission: AdmissionPolicy) -> Self {
        Shard {
            state: Mutex::new(ShardState {
                entries: HashMap::new(),
                lru: LruList::new(),
                resident_bytes: 0,
                evictions: 0,
                admission_rejects: 0,
                sketch: match admission {
                    AdmissionPolicy::Lru => None,
                    AdmissionPolicy::TinyLfu => Some(FrequencySketch::new()),
                },
            }),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

impl<V> ShardState<V> {
    /// Evicts LRU-tail entries until `resident_bytes <= budget`. The entry
    /// just inserted sits at the LRU head, so it is evicted only when it
    /// alone exceeds the shard budget — in which case residency is given
    /// up (the caller still holds the value through its `Arc`).
    fn enforce_budget(&mut self, budget: usize) {
        while self.resident_bytes > budget {
            let Some(key) = self.lru.tail_key() else {
                break;
            };
            self.evict(key);
        }
    }

    fn evict(&mut self, key: GraphKey) {
        if let Some(entry) = self.entries.remove(&key) {
            self.lru.remove(entry.node);
            self.resident_bytes -= entry.weight;
            self.evictions += 1;
        }
    }

    /// Budget enforcement after `candidate` was freshly inserted and
    /// accounted. Under LRU this is plain [`ShardState::enforce_budget`];
    /// under TinyLFU the candidate must *earn* residency: while the shard
    /// is over budget, the LRU victim is evicted only if the candidate's
    /// estimated frequency is at least the victim's — otherwise the
    /// candidate itself gives up residency (an admission reject, not an
    /// eviction) and the remaining overflow (if any) falls back to LRU.
    fn admit_and_enforce(&mut self, budget: usize, candidate: GraphKey) {
        while self.resident_bytes > budget {
            let Some(victim) = self.lru.tail_key() else {
                break;
            };
            if victim != candidate {
                if let Some(sketch) = &self.sketch {
                    if sketch.estimate(victim) > sketch.estimate(candidate) {
                        if let Some(entry) = self.entries.remove(&candidate) {
                            self.lru.remove(entry.node);
                            self.resident_bytes -= entry.weight;
                            self.admission_rejects += 1;
                        }
                        continue;
                    }
                }
            }
            self.evict(victim);
        }
    }
}

/// A concurrent, instrumented, sharded memo table from [`GraphKey`] to a
/// feature value of type `V`, with optional LRU byte-budget eviction.
///
/// Shard mutexes are held only for entry lookup/insertion and LRU/budget
/// bookkeeping; the (potentially very expensive) compute runs outside them,
/// serialised per key by a [`OnceLock`] so concurrent requests for the
/// *same* graph block until the first finishes rather than recomputing.
pub struct FeatureCache<V> {
    shards: Vec<Shard<V>>,
    /// Total byte budget; `usize::MAX` encodes "unbounded".
    budget: AtomicUsize,
    admission: AdmissionPolicy,
}

impl<V> Default for FeatureCache<V> {
    fn default() -> Self {
        FeatureCache::new()
    }
}

impl<V> std::fmt::Debug for FeatureCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FeatureCache")
            .field("shards", &self.shards.len())
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .field("admission_rejects", &stats.admission_rejects)
            .field("resident_bytes", &stats.resident_bytes)
            .field("budget_bytes", &self.budget_bytes())
            .field("admission", &self.admission)
            .finish()
    }
}

impl<V> FeatureCache<V> {
    /// Creates an unbounded cache with the default shard count.
    pub fn new() -> Self {
        FeatureCache::with_config(CacheConfig::default())
    }

    /// Creates a cache with an explicit shard count, budget and admission
    /// policy.
    pub fn with_config(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        FeatureCache {
            shards: (0..shards).map(|_| Shard::new(config.admission)).collect(),
            budget: AtomicUsize::new(config.budget_bytes.unwrap_or(usize::MAX)),
            admission: config.admission,
        }
    }

    /// Number of key-range shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The configured admission policy.
    pub fn admission(&self) -> AdmissionPolicy {
        self.admission
    }

    /// The total byte budget, if one is configured.
    pub fn budget_bytes(&self) -> Option<usize> {
        let raw = self.budget.load(Ordering::Relaxed);
        (raw != usize::MAX).then_some(raw)
    }

    /// Each shard's slice of the budget (floor division — see
    /// [`CacheConfig::budget_bytes`]).
    fn shard_budget(&self) -> usize {
        match self.budget.load(Ordering::Relaxed) {
            usize::MAX => usize::MAX,
            total => total / self.shards.len(),
        }
    }

    /// Re-budgets the cache at runtime (`None` lifts the bound), evicting
    /// immediately if shards now exceed their slice. This is the
    /// memory-pressure lever for long-running processes.
    pub fn set_budget(&self, budget_bytes: Option<usize>) {
        self.budget
            .store(budget_bytes.unwrap_or(usize::MAX), Ordering::Relaxed);
        let per_shard = self.shard_budget();
        for shard in &self.shards {
            shard
                .state
                .lock()
                .expect("cache shard poisoned")
                .enforce_budget(per_shard);
        }
    }

    /// The shard index serving `key` — a contiguous range partition of the
    /// upper 64 bits of the structural hash. Exposed so tests and
    /// observability can attribute keys to shards.
    pub fn shard_of(&self, key: GraphKey) -> usize {
        let high = (key.0 >> 64) as u64;
        // Multiply-shift range partition: shard i serves an equal-width
        // contiguous slice of the 64-bit key space.
        ((high as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// Returns the cached value for `key` if present, counting a hit and
    /// refreshing the key's LRU position.
    pub fn get(&self, key: GraphKey) -> Option<Arc<V>> {
        let shard = &self.shards[self.shard_of(key)];
        let value = {
            let mut state = shard.state.lock().expect("cache shard poisoned");
            if let Some(sketch) = &mut state.sketch {
                sketch.record(key);
            }
            match state.entries.get(&key) {
                Some(entry) => {
                    let node = entry.node;
                    let value = entry.slot.get().cloned();
                    if value.is_some() {
                        state.lru.touch(node);
                    }
                    value
                }
                None => None,
            }
        };
        if value.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Returns the cached value for `key` without computing, if present.
    /// Unlike [`FeatureCache::get`] this touches neither the hit counter
    /// nor the LRU order — it is for introspection, not for serving
    /// lookups.
    pub fn peek(&self, key: GraphKey) -> Option<Arc<V>> {
        let shard = &self.shards[self.shard_of(key)];
        let state = shard.state.lock().expect("cache shard poisoned");
        state.entries.get(&key).and_then(|e| e.slot.get().cloned())
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            let state = shard.state.lock().expect("cache shard poisoned");
            stats.entries += state.entries.len();
            stats.evictions += state.evictions;
            stats.admission_rejects += state.admission_rejects;
            stats.resident_bytes += state.resident_bytes;
            stats.hits += shard.hits.load(Ordering::Relaxed);
            stats.misses += shard.misses.load(Ordering::Relaxed);
        }
        stats
    }

    /// Per-shard counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let budget = self.shard_budget();
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.state.lock().expect("cache shard poisoned");
                ShardStats {
                    entries: state.entries.len(),
                    hits: shard.hits.load(Ordering::Relaxed),
                    misses: shard.misses.load(Ordering::Relaxed),
                    evictions: state.evictions,
                    admission_rejects: state.admission_rejects,
                    resident_bytes: state.resident_bytes,
                    budget_bytes: (budget != usize::MAX).then_some(budget),
                }
            })
            .collect()
    }

    /// Evicts every resident value through the normal eviction path and
    /// resets the hit/miss/eviction counters to zero. Prefer [`set_budget`]
    /// for memory pressure — `clear` is for hard boundaries (model
    /// replacement, benchmark isolation) where stale features must not
    /// survive.
    ///
    /// [`set_budget`]: FeatureCache::set_budget
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.state.lock().expect("cache shard poisoned");
            // Draining the LRU through evict() empties the entry map and
            // the byte counter too (including weight-0 in-flight entries).
            while let Some(key) = state.lru.tail_key() {
                state.evict(key);
            }
            state.evictions = 0;
            state.admission_rejects = 0;
            if let Some(sketch) = &mut state.sketch {
                *sketch = FrequencySketch::new();
            }
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
        }
    }
}

impl<V: CacheWeight> FeatureCache<V> {
    /// Returns the cached value for `key`, computing it with `compute` on
    /// the first request. While `key` stays resident, `compute` runs
    /// exactly once across all threads: concurrent requesters block on the
    /// first compute instead of duplicating it. If the budget evicts `key`,
    /// a later request recomputes (observable through
    /// [`CacheStats::evictions`]).
    pub fn get_or_compute(&self, key: GraphKey, compute: impl FnOnce() -> V) -> Arc<V> {
        let shard = &self.shards[self.shard_of(key)];
        let slot = {
            let mut state = shard.state.lock().expect("cache shard poisoned");
            if let Some(sketch) = &mut state.sketch {
                sketch.record(key);
            }
            match state.entries.get(&key) {
                Some(entry) => {
                    let node = entry.node;
                    let slot = Arc::clone(&entry.slot);
                    state.lru.touch(node);
                    slot
                }
                None => {
                    let slot: Arc<OnceLock<Arc<V>>> = Arc::new(OnceLock::new());
                    let node = state.lru.push_front(key);
                    state.entries.insert(
                        key,
                        Entry {
                            slot: Arc::clone(&slot),
                            weight: 0,
                            node,
                        },
                    );
                    slot
                }
            }
        };

        let mut computed_here = false;
        let value = Arc::clone(slot.get_or_init(|| {
            computed_here = true;
            Arc::new(compute())
        }));

        if computed_here {
            shard.misses.fetch_add(1, Ordering::Relaxed);
            let weight = CacheWeight::weight(value.as_ref()).max(1);
            let mut state = shard.state.lock().expect("cache shard poisoned");
            // Account the weight only if our entry is still the resident
            // one (it may have been evicted, or evicted-and-replaced by a
            // fresh entry, while we computed).
            if let Some(entry) = state.entries.get_mut(&key) {
                if Arc::ptr_eq(&entry.slot, &slot) && entry.weight == 0 {
                    entry.weight = weight;
                    state.resident_bytes += weight;
                    state.admit_and_enforce(self.shard_budget(), key);
                }
            }
        } else {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::GraphKey;

    #[test]
    fn computes_once_and_counts() {
        let cache: FeatureCache<u64> = FeatureCache::new();
        let key = GraphKey(42);
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_compute(key, || {
                calls.fetch_add(1, Ordering::SeqCst);
                99
            });
            assert_eq!(*v, 99);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident_bytes, 8);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn concurrent_requests_compute_exactly_once() {
        let cache: Arc<FeatureCache<u64>> = Arc::new(FeatureCache::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || {
                let v = cache.get_or_compute(GraphKey(7), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    123
                });
                assert_eq!(*v, 123);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }

    #[test]
    fn peek_and_clear() {
        let cache: FeatureCache<String> = FeatureCache::new();
        assert!(cache.peek(GraphKey(1)).is_none());
        cache.get_or_compute(GraphKey(1), || "x".to_string());
        assert_eq!(cache.peek(GraphKey(1)).as_deref(), Some(&"x".to_string()));
        cache.clear();
        assert!(cache.peek(GraphKey(1)).is_none());
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    /// Spread keys across the upper-64-bit range so they land in distinct
    /// shard ranges.
    fn spread_key(i: u64) -> GraphKey {
        GraphKey(((i.wrapping_mul(0x9E3779B97F4A7C15)) as u128) << 64 | i as u128)
    }

    #[test]
    fn keys_spread_over_shards_by_range() {
        let cache: FeatureCache<u64> = FeatureCache::with_config(CacheConfig {
            shards: 4,
            budget_bytes: None,
            ..CacheConfig::default()
        });
        assert_eq!(cache.shards(), 4);
        let mut seen = [false; 4];
        for i in 0..64 {
            let s = cache.shard_of(spread_key(i));
            assert!(s < 4);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards should receive keys");
        // Range partition: ordered high bits map to non-decreasing shards.
        assert_eq!(cache.shard_of(GraphKey(0)), 0);
        assert_eq!(cache.shard_of(GraphKey(u128::MAX)), 3);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        // Single shard so the LRU order is global and deterministic.
        let cache: FeatureCache<u64> = FeatureCache::with_config(CacheConfig {
            shards: 1,
            budget_bytes: Some(3 * 8),
            ..CacheConfig::default()
        });
        for i in 0..3u64 {
            cache.get_or_compute(GraphKey(i as u128), || i);
        }
        assert_eq!(cache.stats().entries, 3);
        // Touch key 0 so key 1 becomes the LRU candidate.
        assert!(cache.get(GraphKey(0)).is_some());
        cache.get_or_compute(GraphKey(3), || 3);
        let stats = cache.stats();
        assert_eq!(stats.entries, 3, "budget holds three 8-byte values");
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes <= 24);
        assert!(cache.peek(GraphKey(1)).is_none(), "LRU key evicted");
        assert!(cache.peek(GraphKey(0)).is_some(), "touched key survives");
        assert!(cache.peek(GraphKey(2)).is_some());
        assert!(cache.peek(GraphKey(3)).is_some());
        // The evicted key recomputes on the next request.
        let calls = AtomicUsize::new(0);
        cache.get_or_compute(GraphKey(1), || {
            calls.fetch_add(1, Ordering::SeqCst);
            1
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn oversized_value_is_returned_but_not_retained() {
        let cache: FeatureCache<String> = FeatureCache::with_config(CacheConfig {
            shards: 1,
            budget_bytes: Some(16),
            ..CacheConfig::default()
        });
        let v = cache.get_or_compute(GraphKey(9), || "x".repeat(4096));
        assert_eq!(v.len(), 4096, "caller still gets the value");
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "value larger than the budget");
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident_bytes, 0);
    }

    #[test]
    fn set_budget_evicts_immediately_and_lifts() {
        let cache: FeatureCache<u64> = FeatureCache::with_config(CacheConfig {
            shards: 1,
            budget_bytes: None,
            ..CacheConfig::default()
        });
        for i in 0..10u64 {
            cache.get_or_compute(GraphKey(i as u128), || i);
        }
        assert_eq!(cache.stats().entries, 10);
        cache.set_budget(Some(4 * 8));
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 6);
        assert_eq!(cache.budget_bytes(), Some(32));
        cache.set_budget(None);
        assert_eq!(cache.budget_bytes(), None);
        for i in 0..10u64 {
            cache.get_or_compute(GraphKey((100 + i) as u128), || i);
        }
        assert_eq!(cache.stats().entries, 14, "unbounded again");
    }

    #[test]
    fn tinylfu_keeps_hot_entries_against_cold_scans() {
        // Single shard, budget for three 8-byte values, TinyLFU admission.
        let cache: FeatureCache<u64> = FeatureCache::with_config(CacheConfig {
            shards: 1,
            budget_bytes: Some(3 * 8),
            admission: AdmissionPolicy::TinyLfu,
        });
        assert_eq!(cache.admission(), AdmissionPolicy::TinyLfu);
        // Make keys 0..3 hot (several recorded accesses each).
        for _ in 0..4 {
            for i in 0..3u64 {
                cache.get_or_compute(GraphKey(i as u128), || i);
            }
        }
        assert_eq!(cache.stats().entries, 3);
        // A scan of one-hit wonders: each is seen once, colder than every
        // resident, so the gate rejects them and the hot set survives.
        for i in 100..108u64 {
            let v = cache.get_or_compute(GraphKey(i as u128), || i);
            assert_eq!(*v, i, "caller still receives the rejected value");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3, "hot entries survived the scan");
        assert_eq!(stats.admission_rejects, 8);
        assert_eq!(stats.evictions, 0);
        for i in 0..3u64 {
            assert!(cache.peek(GraphKey(i as u128)).is_some(), "hot key {i}");
        }
        // Shard stats expose the reject counter too.
        let shard_rejects: usize = cache
            .shard_stats()
            .iter()
            .map(|s| s.admission_rejects)
            .sum();
        assert_eq!(shard_rejects, 8);
        // A newcomer that proves itself hot *is* admitted (≥ victim rule).
        for _ in 0..8 {
            cache.get_or_compute(GraphKey(500), || 500);
        }
        assert!(
            cache.peek(GraphKey(500)).is_some(),
            "a repeatedly requested key must eventually be admitted"
        );
        // clear() resets the reject counter with the rest.
        cache.clear();
        assert_eq!(cache.stats().admission_rejects, 0);
    }

    #[test]
    fn lru_policy_never_counts_admission_rejects() {
        let cache: FeatureCache<u64> = FeatureCache::with_config(CacheConfig {
            shards: 1,
            budget_bytes: Some(2 * 8),
            ..CacheConfig::default()
        });
        for i in 0..10u64 {
            cache.get_or_compute(GraphKey(i as u128), || i);
        }
        let stats = cache.stats();
        assert_eq!(stats.admission_rejects, 0);
        assert_eq!(stats.evictions, 8);
    }

    #[test]
    fn frequency_sketch_estimates_and_ages() {
        let mut sketch = FrequencySketch::new();
        let hot = GraphKey(7);
        let cold = GraphKey(1234567);
        assert_eq!(sketch.estimate(hot), 0);
        for _ in 0..6 {
            sketch.record(hot);
        }
        sketch.record(cold);
        assert!(sketch.estimate(hot) >= 5);
        assert!(sketch.estimate(cold) <= 1);
        assert!(sketch.estimate(hot) > sketch.estimate(cold));
        // Counters saturate at 15 + doorkeeper bit.
        for _ in 0..100 {
            sketch.record(hot);
        }
        assert!(sketch.estimate(hot) <= 16);
        // Aging halves the estimate instead of pinning it forever.
        let before = sketch.estimate(hot);
        sketch.age();
        assert!(sketch.estimate(hot) <= before / 2 + 1);
    }

    #[test]
    fn admission_policy_labels_parse() {
        assert_eq!(AdmissionPolicy::parse("lru"), Some(AdmissionPolicy::Lru));
        assert_eq!(
            AdmissionPolicy::parse(" TinyLFU "),
            Some(AdmissionPolicy::TinyLfu)
        );
        assert_eq!(AdmissionPolicy::parse("arc"), None);
        assert_eq!(AdmissionPolicy::TinyLfu.label(), "tinylfu");
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::Lru);
    }

    #[test]
    fn parse_byte_sizes() {
        assert_eq!(parse_byte_size("1024"), Some(1024));
        assert_eq!(parse_byte_size(" 64k "), Some(64 << 10));
        assert_eq!(parse_byte_size("256M"), Some(256 << 20));
        assert_eq!(parse_byte_size("2g"), Some(2 << 30));
        assert_eq!(parse_byte_size("nope"), None);
        assert_eq!(parse_byte_size(""), None);
    }

    #[test]
    fn weights_account_heap_data() {
        assert_eq!(7u64.weight(), 8);
        assert!(String::from("hello").weight() >= 5);
        let m = haqjsk_linalg::Matrix::zeros(4, 5);
        assert!(m.weight() >= 4 * 5 * 8);
        let v: Vec<f64> = vec![0.0; 10];
        assert!(v.weight() >= 80);
    }
}
