//! Memoisation of expensive per-graph features.
//!
//! The HAQJSK pipeline's cost is dominated by per-*pair* kernel evaluations,
//! but the per-*graph* inputs to those evaluations — CTQW density matrices
//! (`O(n^3)` eigendecompositions), depth-based vertex representations,
//! aligned structure families — are reusable across every pair and every
//! request that involves the same graph. [`FeatureCache`] memoises them
//! under a [`GraphKey`](crate::hash::GraphKey), guarantees each value is
//! computed **exactly once** even under concurrent access, and counts hits
//! and misses so callers (and tests) can verify the exactly-once property.

use crate::hash::GraphKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hit/miss counters of a [`FeatureCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to compute the value.
    pub misses: usize,
    /// Number of distinct keys currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent, instrumented memo table from [`GraphKey`] to a feature
/// value of type `V`.
///
/// The map mutex is held only for entry lookup/insertion; the (potentially
/// very expensive) compute runs outside it, serialised per key by a
/// [`OnceLock`] so concurrent requests for the *same* graph block until the
/// first finishes rather than recomputing.
pub struct FeatureCache<V> {
    map: Mutex<HashMap<GraphKey, Arc<OnceLock<Arc<V>>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<V> Default for FeatureCache<V> {
    fn default() -> Self {
        FeatureCache::new()
    }
}

impl<V> std::fmt::Debug for FeatureCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FeatureCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl<V> FeatureCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        FeatureCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Returns the cached value for `key`, computing it with `compute` on
    /// the first request. `compute` runs exactly once per key across all
    /// threads.
    pub fn get_or_compute(&self, key: GraphKey, compute: impl FnOnce() -> V) -> Arc<V> {
        let slot = {
            let mut map = self.map.lock().expect("cache map poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed_here = false;
        let value = Arc::clone(slot.get_or_init(|| {
            computed_here = true;
            Arc::new(compute())
        }));
        if computed_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Returns the cached value for `key` if present, counting a hit.
    pub fn get(&self, key: GraphKey) -> Option<Arc<V>> {
        let value = self.peek(key);
        if value.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Returns the cached value for `key` without computing, if present.
    /// Unlike [`FeatureCache::get`] this does not touch the hit counter —
    /// it is for introspection, not for serving lookups.
    pub fn peek(&self, key: GraphKey) -> Option<Arc<V>> {
        let map = self.map.lock().expect("cache map poisoned");
        map.get(&key).and_then(|slot| slot.get().cloned())
    }

    /// Current hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.map.lock().expect("cache map poisoned").len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drops every cached value and resets the counters.
    pub fn clear(&self) {
        self.map.lock().expect("cache map poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::GraphKey;

    #[test]
    fn computes_once_and_counts() {
        let cache: FeatureCache<u64> = FeatureCache::new();
        let key = GraphKey(42);
        let calls = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_compute(key, || {
                calls.fetch_add(1, Ordering::SeqCst);
                99
            });
            assert_eq!(*v, 99);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn concurrent_requests_compute_exactly_once() {
        let cache: Arc<FeatureCache<u64>> = Arc::new(FeatureCache::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || {
                let v = cache.get_or_compute(GraphKey(7), || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    123
                });
                assert_eq!(*v, 123);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }

    #[test]
    fn peek_and_clear() {
        let cache: FeatureCache<String> = FeatureCache::new();
        assert!(cache.peek(GraphKey(1)).is_none());
        cache.get_or_compute(GraphKey(1), || "x".to_string());
        assert_eq!(cache.peek(GraphKey(1)).as_deref(), Some(&"x".to_string()));
        cache.clear();
        assert!(cache.peek(GraphKey(1)).is_none());
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
    }
}
