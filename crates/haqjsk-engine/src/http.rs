//! A minimal HTTP/1.1 GET endpoint over the hardened serving substrate.
//!
//! Scrape tooling (Prometheus, load balancer health checks, humans with
//! `curl`) speaks HTTP, not the JSON-lines wire. This module serves GET
//! requests with the same defensive posture as [`crate::serve`] — bounded
//! request lines, capped header counts, slow-loris cutoffs, connection
//! shedding — by reusing its [`BoundedLineReader`] and lingering close.
//!
//! Deliberately tiny: `GET` only (anything else is `405`), no bodies read,
//! no chunked encoding, `Content-Length` responses with keep-alive and
//! pipelining. Routes live in the caller-provided responder closure; the
//! transport only knows paths and status codes.
//!
//! Unlike the JSON-lines server, the HTTP listener has no drain phase: it
//! keeps answering until process exit so `/healthz` can report `503` while
//! the main server drains.

use crate::serve::{linger_close, BoundedLineReader, Poll, ServeConfig};
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Hard cap on one request line. Far below the JSON frame knob: scrape
/// targets are short, and an 8 KiB GET line is already abuse.
const MAX_REQUEST_LINE_BYTES: usize = 8 << 10;
/// Maximum header lines accepted per request before `431`.
const MAX_HEADER_LINES: usize = 64;

/// One rendered HTTP response: status, content type, body, and the
/// bounded-cardinality route label the request counter files it under
/// (`"other"` for anything outside the fixed route table).
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (sent with an exact `Content-Length`).
    pub body: String,
    /// Metric label for `haqjsk_http_requests_total{path=...}`. Must come
    /// from a fixed set — never echo the raw request path.
    pub route: &'static str,
}

impl HttpResponse {
    /// A `text/plain` response.
    pub fn text(status: u16, route: &'static str, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            route,
        }
    }
}

/// Maps a request path (query string already stripped) to a response.
pub type HttpResponder = dyn Fn(&str) -> HttpResponse + Send + Sync;

struct HttpShared {
    shutdown: AtomicBool,
    active: AtomicUsize,
}

/// A running HTTP listener: accept loop on a background thread, one thread
/// per connection, shut down on drop.
pub struct HttpServer {
    local_addr: SocketAddr,
    shared: Arc<HttpShared>,
    accept_thread: Option<thread::JoinHandle<()>>,
    tick: Duration,
}

impl HttpServer {
    /// Binds `addr` and serves `responder`, with the connection cap, I/O
    /// timeout and tick of [`ServeConfig::from_env`] (the `HAQJSK_SERVE_*`
    /// knobs govern both listeners).
    pub fn spawn(addr: &str, responder: Arc<HttpResponder>) -> std::io::Result<HttpServer> {
        let config = ServeConfig::from_env()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        HttpServer::spawn_with_config(addr, responder, config)
    }

    /// [`HttpServer::spawn`] with explicit limits (tests shrink them).
    pub fn spawn_with_config(
        addr: &str,
        responder: Arc<HttpResponder>,
        config: ServeConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(HttpShared {
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let tick = config.tick;
        let accept_thread = thread::Builder::new()
            .name("haqjsk-http-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    stream.set_nodelay(true).ok();
                    if accept_shared.active.load(Ordering::Acquire) >= config.max_conns {
                        shed_http_connection(stream);
                        continue;
                    }
                    crate::obs::http_connections_counter().inc();
                    let guard = HttpConnGuard::register(&accept_shared);
                    let responder = Arc::clone(&responder);
                    let conn_shared = Arc::clone(&accept_shared);
                    let conn_config = config.clone();
                    let _ = thread::Builder::new()
                        .name("haqjsk-http-conn".to_string())
                        .spawn(move || {
                            let _guard = guard;
                            let _ = serve_http_connection(
                                stream,
                                responder.as_ref(),
                                &conn_shared,
                                &conn_config,
                            );
                        });
                }
            })?;

        Ok(HttpServer {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            tick,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Same wildcard-vs-loopback dance as the JSON-lines server: dial the
    /// listener once to unblock its blocking accept.
    fn unblock_addr(&self) -> SocketAddr {
        let ip = match self.local_addr.ip() {
            ip if !ip.is_unspecified() => ip,
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        };
        SocketAddr::new(ip, self.local_addr.port())
    }

    /// Stops accepting and gives open connections a few ticks to observe
    /// the flag and exit.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect_timeout(&self.unblock_addr(), Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let grace = self.tick * 4;
        let start = Instant::now();
        while self.shared.active.load(Ordering::Acquire) > 0 && start.elapsed() < grace {
            thread::sleep(self.tick.min(Duration::from_millis(10)));
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// RAII registration of one open HTTP connection (count + gauge exact on
/// every exit path).
struct HttpConnGuard {
    shared: Arc<HttpShared>,
}

impl HttpConnGuard {
    fn register(shared: &Arc<HttpShared>) -> HttpConnGuard {
        shared.active.fetch_add(1, Ordering::AcqRel);
        crate::obs::http_active_connections_gauge().add(1.0);
        HttpConnGuard {
            shared: Arc::clone(shared),
        }
    }
}

impl Drop for HttpConnGuard {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        crate::obs::http_active_connections_gauge().add(-1.0);
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a full response. `extra` carries pre-formatted additional header
/// lines (each `\r\n`-terminated), e.g. `Allow: GET` on a `405`.
fn write_response(
    writer: &mut TcpStream,
    response: &HttpResponse,
    close: bool,
    extra: &str,
) -> std::io::Result<()> {
    crate::obs::http_requests_counter(response.route, response.status).inc();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        extra,
        if close { "close" } else { "keep-alive" },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

/// Answers an over-cap connection with one `503` and a clean close.
fn shed_http_connection(stream: TcpStream) {
    let mut stream = stream;
    stream.set_write_timeout(Some(Duration::from_secs(1))).ok();
    let response = HttpResponse::text(503, "transport", "busy\n");
    let _ = write_response(&mut stream, &response, true, "");
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Serves one HTTP connection until EOF, a protocol violation, a timeout,
/// or shutdown. Keep-alive by default; `Connection: close` honored.
fn serve_http_connection(
    stream: TcpStream,
    responder: &HttpResponder,
    shared: &Arc<HttpShared>,
    config: &ServeConfig,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    writer.set_write_timeout(config.io_timeout)?;
    let mut reader = BoundedLineReader::new(stream, MAX_REQUEST_LINE_BYTES, config.tick)?;
    // Mid-line stall timer for the request-line phase: idle between
    // requests is fine (keep-alive), a half-sent line is not.
    let mut frame_started: Option<Instant> = None;
    'conn: loop {
        // Phase 1: the request line.
        let line = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                break 'conn;
            }
            match reader.poll_line()? {
                Poll::Eof => break 'conn,
                Poll::Oversized => {
                    let response = HttpResponse::text(431, "transport", "request line too long\n");
                    write_response(&mut writer, &response, true, "").ok();
                    linger_close(&reader.stream, config.tick, &shared.shutdown);
                    break 'conn;
                }
                Poll::Tick { partial: false } => frame_started = None,
                Poll::Tick { partial: true } => {
                    let started = *frame_started.get_or_insert_with(Instant::now);
                    if let Some(timeout) = config.io_timeout {
                        if started.elapsed() >= timeout {
                            let response =
                                HttpResponse::text(408, "transport", "request timed out\n");
                            write_response(&mut writer, &response, true, "").ok();
                            break 'conn;
                        }
                    }
                }
                Poll::Line(line) => {
                    frame_started = None;
                    if line.is_empty() {
                        continue; // stray CRLF between pipelined requests
                    }
                    break line;
                }
            }
        };

        let mut parts = line.split_whitespace();
        let (Some(method), Some(target), Some(version)) =
            (parts.next(), parts.next(), parts.next())
        else {
            let response = HttpResponse::text(400, "transport", "malformed request line\n");
            write_response(&mut writer, &response, true, "").ok();
            break 'conn;
        };
        if !version.starts_with("HTTP/1.") {
            let response = HttpResponse::text(400, "transport", "unsupported protocol\n");
            write_response(&mut writer, &response, true, "").ok();
            break 'conn;
        }

        // Phase 2: headers, until the blank line. The whole head is one
        // "frame" for slow-loris purposes: a client that trickles complete
        // header lines (or sends none at all) is cut off `io_timeout`
        // after its request line, whether or not a line is half-sent.
        let head_started = Instant::now();
        let mut close_requested = version == "HTTP/1.0";
        let mut header_lines = 0usize;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                break 'conn;
            }
            if let Some(timeout) = config.io_timeout {
                if head_started.elapsed() >= timeout {
                    let response = HttpResponse::text(408, "transport", "headers timed out\n");
                    write_response(&mut writer, &response, true, "").ok();
                    break 'conn;
                }
            }
            match reader.poll_line()? {
                Poll::Eof => break 'conn,
                Poll::Oversized => {
                    let response = HttpResponse::text(431, "transport", "header line too long\n");
                    write_response(&mut writer, &response, true, "").ok();
                    linger_close(&reader.stream, config.tick, &shared.shutdown);
                    break 'conn;
                }
                Poll::Tick { .. } => continue,
                Poll::Line(header) => {
                    if header.is_empty() {
                        break; // end of head
                    }
                    header_lines += 1;
                    if header_lines > MAX_HEADER_LINES {
                        let response = HttpResponse::text(431, "transport", "too many headers\n");
                        write_response(&mut writer, &response, true, "").ok();
                        linger_close(&reader.stream, config.tick, &shared.shutdown);
                        break 'conn;
                    }
                    if let Some((name, value)) = header.split_once(':') {
                        if name.trim().eq_ignore_ascii_case("connection") {
                            match value.trim() {
                                v if v.eq_ignore_ascii_case("close") => close_requested = true,
                                v if v.eq_ignore_ascii_case("keep-alive") => {
                                    close_requested = false
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }

        // Phase 3: dispatch.
        if !method.eq_ignore_ascii_case("GET") {
            let response = HttpResponse::text(405, "transport", "GET only\n");
            write_response(&mut writer, &response, true, "Allow: GET\r\n").ok();
            break 'conn;
        }
        let path = target.split('?').next().unwrap_or(target);
        let response = catch_unwind(AssertUnwindSafe(|| responder(path))).unwrap_or_else(|_| {
            crate::obs::serve_panics_counter().inc();
            HttpResponse::text(500, "transport", "internal error\n")
        });
        write_response(&mut writer, &response, close_requested, "")?;
        if close_requested {
            break 'conn;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read};

    fn echo_responder() -> Arc<HttpResponder> {
        Arc::new(|path: &str| match path {
            "/hello" => HttpResponse::text(200, "/hello", "hi\n"),
            "/boom" => panic!("deliberate test panic"),
            _ => HttpResponse::text(404, "other", "not found\n"),
        })
    }

    fn fast_config() -> ServeConfig {
        ServeConfig {
            tick: Duration::from_millis(10),
            ..ServeConfig::default()
        }
    }

    /// Reads one response off the stream: (status, headers, body).
    fn read_response(reader: &mut BufReader<TcpStream>) -> Option<(u16, Vec<String>, String)> {
        let mut status_line = String::new();
        if reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).ok()?;
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok()?;
                }
            }
            headers.push(line);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok()?;
        Some((status, headers, String::from_utf8_lossy(&body).into_owned()))
    }

    #[test]
    fn get_roundtrip_with_keep_alive_and_pipelining() {
        let mut server =
            HttpServer::spawn_with_config("127.0.0.1:0", echo_responder(), fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer
            .write_all(b"GET /hello HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (status, _, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hi\n");

        // Two pipelined requests in one write, answered in order on the
        // same connection.
        writer
            .write_all(b"GET /hello HTTP/1.1\r\n\r\nGET /missing HTTP/1.1\r\n\r\n")
            .unwrap();
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn connection_close_is_honored() {
        let mut server =
            HttpServer::spawn_with_config("127.0.0.1:0", echo_responder(), fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"GET /hello HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert!(headers.iter().any(|h| h == "Connection: close"));
        assert!(read_response(&mut reader).is_none(), "connection closed");
        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let mut server =
            HttpServer::spawn_with_config("127.0.0.1:0", echo_responder(), fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer
            .write_all(b"POST /hello HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        let (status, headers, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 405);
        assert!(headers.iter().any(|h| h == "Allow: GET"));
        server.shutdown();
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let mut server =
            HttpServer::spawn_with_config("127.0.0.1:0", echo_responder(), fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let long = vec![b'x'; MAX_REQUEST_LINE_BYTES + 1024];
        writer.write_all(b"GET /").unwrap();
        writer.write_all(&long).unwrap();
        let (status, _, _) = read_response(&mut reader).expect("431 before close");
        assert_eq!(status, 431);
        assert!(read_response(&mut reader).is_none(), "connection closed");
        server.shutdown();
    }

    #[test]
    fn slow_loris_headers_are_cut_off() {
        let config = ServeConfig {
            io_timeout: Some(Duration::from_millis(80)),
            ..fast_config()
        };
        let mut server =
            HttpServer::spawn_with_config("127.0.0.1:0", echo_responder(), config).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // A complete request line, then silence: the per-line heuristic
        // alone would never fire, but the head deadline must.
        writer.write_all(b"GET /hello HTTP/1.1\r\n").unwrap();
        writer.flush().unwrap();
        let start = Instant::now();
        let (status, _, _) = read_response(&mut reader).expect("408 before close");
        assert_eq!(status, 408);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(read_response(&mut reader).is_none(), "connection closed");
        server.shutdown();
    }

    #[test]
    fn responder_panics_become_500() {
        let mut server =
            HttpServer::spawn_with_config("127.0.0.1:0", echo_responder(), fast_config()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"GET /boom HTTP/1.1\r\n\r\n").unwrap();
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 500);
        // The connection survives the panic.
        writer.write_all(b"GET /hello HTTP/1.1\r\n\r\n").unwrap();
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }
}
