//! Tiled Gram-matrix scheduling on top of the worker pool.
//!
//! A Gram matrix over `n` items has `n(n+1)/2` independent entries. Raw
//! pair lists scatter a worker's attention across the whole index range;
//! tiling the upper triangle into `T x T` blocks instead gives each job a
//! contiguous row/column band, so the per-item features touched by a tile
//! (density matrices, aligned structures) stay hot in cache while the tile
//! is computed. Every entry `(i, j)` with `i <= j` belongs to exactly one
//! tile, and each tile writes that entry and its mirror `(j, i)`, so tiles
//! write disjoint memory and the output buffer can be shared without locks.

use crate::pool::WorkerPool;
use haqjsk_linalg::Matrix;

/// Hard floor/ceiling on the automatically chosen tile width.
const MIN_TILE: usize = 2;
const MAX_TILE: usize = 64;

/// Floor on the tile width of whole-tile (batched) evaluation: a `T x T`
/// tile yields at least `T(T+1)/2` pairs, and batched pair kernels want
/// enough pairs per tile to fill their SIMD lanes even after chunking by
/// mixture dimension class. The lane count is a runtime property of the
/// dispatched SIMD path (16 under AVX-512F, 8 otherwise — see
/// `haqjsk_linalg::max_batch_lanes`), so the floor is computed, not a
/// constant: the smallest `T` whose `T(T+1)/2` pairs cover four full lane
/// chunks (8 when lanes = 8, matching the pre-SIMD floor; 11 when
/// lanes = 16).
fn min_batch_tile() -> usize {
    let lanes = haqjsk_linalg::max_batch_lanes();
    let mut t = 2;
    while t * (t + 1) / 2 < 4 * lanes {
        t += 1;
    }
    t
}

/// Picks a tile width for an `n x n` Gram computation so that the upper
/// triangle yields roughly four jobs per worker — enough slack for load
/// balancing without shredding cache locality.
pub fn auto_tile_width(n: usize, workers: usize) -> usize {
    if n == 0 {
        return MIN_TILE;
    }
    let target_jobs = (workers.max(1) * 4) as f64;
    // t tiles per side give t(t+1)/2 jobs; solve for t.
    let tiles_per_side = ((2.0 * target_jobs).sqrt().ceil() as usize).max(1);
    (n.div_ceil(tiles_per_side)).clamp(MIN_TILE, MAX_TILE)
}

/// Tile width for whole-tile (batched) evaluation: the load-balancing
/// choice of [`auto_tile_width`], floored so every tile carries enough
/// pairs to fill the batched kernels' lanes. Slightly coarser scheduling
/// granularity is the right trade: the per-pair work inside a batched tile
/// is the hot path, and starving its lanes costs more than a worker idling
/// at the tail.
pub fn auto_tile_width_batched(n: usize, workers: usize) -> usize {
    auto_tile_width(n, workers).max(min_batch_tile())
}

/// Shared mutable output buffer; sound because tiles write disjoint entries.
struct TileOutput(*mut f64);

unsafe impl Send for TileOutput {}
unsafe impl Sync for TileOutput {}

impl TileOutput {
    /// # Safety
    /// Callers must write each flat index from at most one concurrent job.
    unsafe fn write(&self, flat: usize, value: f64) {
        *self.0.add(flat) = value;
    }
}

/// Computes the symmetric Gram matrix serially — the reference
/// implementation the parallel path is tested against.
pub fn gram_serial<F>(n: usize, f: F) -> Matrix
where
    F: Fn(usize, usize) -> f64,
{
    let mut values = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = f(i, j);
            values[(i, j)] = v;
            values[(j, i)] = v;
        }
    }
    values
}

/// Computes the symmetric Gram matrix in parallel over `pool`, tiling the
/// upper triangle into `tile x tile` blocks.
pub fn gram_tiled<F>(pool: &WorkerPool, n: usize, tile: usize, f: F) -> Matrix
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let mut values = Matrix::zeros(n, n);
    if n == 0 {
        return values;
    }
    let tile = tile.max(1);
    let blocks = n.div_ceil(tile);

    // Upper-triangular tile coordinates, enumerated once.
    let tiles: Vec<(usize, usize)> = (0..blocks)
        .flat_map(|bi| (bi..blocks).map(move |bj| (bi, bj)))
        .collect();

    let out = TileOutput(values.data_mut().as_mut_ptr());
    let tile_hist = crate::obs::tile_eval_histogram();
    pool.scoped_run(tiles.len(), &|t| {
        let _timer = crate::obs::HistogramTimer::start(tile_hist);
        let (bi, bj) = tiles[t];
        let row_end = ((bi + 1) * tile).min(n);
        let col_end = ((bj + 1) * tile).min(n);
        for i in bi * tile..row_end {
            let j_start = (bj * tile).max(i);
            for j in j_start..col_end {
                let v = f(i, j);
                // SAFETY: (i, j) with i <= j lies in exactly one tile, and
                // the mirror (j, i) is only written by that same tile.
                unsafe {
                    out.write(i * n + j, v);
                    out.write(j * n + i, v);
                }
            }
        }
    });
    values
}

/// Enumerates the upper-triangle tile grid of an `n x n` Gram matrix:
/// `(bi, bj)` block coordinates with `bi <= bj`, row-major — the shared
/// tile decomposition of the pooled and serial tile paths. Public so
/// out-of-process schedulers (the distributed backend) can reproduce the
/// exact local tile grid, keeping work units identical across executors.
pub fn upper_triangle_tiles(n: usize, tile: usize) -> Vec<(usize, usize)> {
    let blocks = n.div_ceil(tile);
    (0..blocks)
        .flat_map(|bi| (bi..blocks).map(move |bj| (bi, bj)))
        .collect()
}

/// The upper-triangle index pairs `(i, j)`, `i <= j`, of one tile of the
/// [`upper_triangle_tiles`] grid, appended into `pairs` (cleared first).
pub fn tile_pairs(n: usize, tile: usize, bi: usize, bj: usize, pairs: &mut Vec<(usize, usize)>) {
    pairs.clear();
    let row_end = ((bi + 1) * tile).min(n);
    let col_end = ((bj + 1) * tile).min(n);
    for i in bi * tile..row_end {
        for j in (bj * tile).max(i)..col_end {
            pairs.push((i, j));
        }
    }
}

/// Computes the symmetric Gram matrix by handing whole tiles of index
/// pairs to `eval` on the calling thread, in deterministic row-major tile
/// order — the serial member of the tile-evaluation family. `eval` must
/// write `out[k]` for `pairs[k]`.
pub fn gram_serial_tiles<F>(n: usize, tile: usize, eval: F) -> Matrix
where
    F: Fn(&[(usize, usize)], &mut [f64]),
{
    let mut values = Matrix::zeros(n, n);
    if n == 0 {
        return values;
    }
    let tile = tile.max(1);
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut out: Vec<f64> = Vec::new();
    for (bi, bj) in upper_triangle_tiles(n, tile) {
        tile_pairs(n, tile, bi, bj, &mut pairs);
        out.clear();
        out.resize(pairs.len(), 0.0);
        eval(&pairs, &mut out);
        for (&(i, j), &v) in pairs.iter().zip(&out) {
            values[(i, j)] = v;
            values[(j, i)] = v;
        }
    }
    values
}

/// Computes the symmetric Gram matrix in parallel over `pool`, handing
/// each `tile x tile` block's index pairs to `eval` as one call — the
/// whole-tile counterpart of [`gram_tiled`], and the scheduling seam that
/// batched (SIMD / future GPU) pair kernels plug into.
pub fn gram_tiled_eval<F>(pool: &WorkerPool, n: usize, tile: usize, eval: F) -> Matrix
where
    F: Fn(&[(usize, usize)], &mut [f64]) + Sync,
{
    let mut values = Matrix::zeros(n, n);
    if n == 0 {
        return values;
    }
    let tile = tile.max(1);
    let tiles = upper_triangle_tiles(n, tile);
    let out = TileOutput(values.data_mut().as_mut_ptr());
    let tile_hist = crate::obs::tile_eval_histogram();
    pool.scoped_run(tiles.len(), &|t| {
        let _timer = crate::obs::HistogramTimer::start(tile_hist);
        let (bi, bj) = tiles[t];
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        tile_pairs(n, tile, bi, bj, &mut pairs);
        let mut block = vec![0.0; pairs.len()];
        eval(&pairs, &mut block);
        for (&(i, j), &v) in pairs.iter().zip(&block) {
            // SAFETY: (i, j) with i <= j lies in exactly one tile, and the
            // mirror (j, i) is only written by that same tile.
            unsafe {
                out.write(i * n + j, v);
                out.write(j * n + i, v);
            }
        }
    });
    values
}

/// Serial counterpart of [`gram_extend`]: copies the base block and fills
/// the new rows/columns in deterministic row-major order on the calling
/// thread. Byte-identical to the parallel path for deterministic `f`.
pub fn gram_extend_serial<F>(base: &Matrix, total: usize, f: F) -> Matrix
where
    F: Fn(usize, usize) -> f64,
{
    let m = base.rows();
    assert!(base.is_square(), "base Gram matrix must be square");
    assert!(total >= m, "cannot shrink a Gram matrix via extension");
    let n = total;
    let mut values = Matrix::zeros(n, n);
    for i in 0..m {
        values.data_mut()[i * n..i * n + m].copy_from_slice(base.row(i));
    }
    for i in 0..n {
        for j in m.max(i)..n {
            let v = f(i, j);
            values[(i, j)] = v;
            values[(j, i)] = v;
        }
    }
    values
}

/// Shrinks a Gram matrix to the contiguous index window `keep`, dropping
/// every row/column outside it — the eviction counterpart of
/// [`gram_extend`] for sliding-window streaming deployments: after
/// appending arrivals with `gram_extend`, evict the oldest items with
/// `gram_shrink` and the window's Gram matrix never grows beyond the
/// window size, with no kernel re-evaluation at all.
///
/// # Panics
/// Panics if `base` is not square or `keep` is out of bounds.
pub fn gram_shrink(base: &Matrix, keep: std::ops::Range<usize>) -> Matrix {
    let n = base.rows();
    assert!(base.is_square(), "base Gram matrix must be square");
    assert!(
        keep.start <= keep.end && keep.end <= n,
        "keep window {keep:?} out of bounds for a {n}x{n} Gram matrix"
    );
    let w = keep.len();
    let mut values = Matrix::zeros(w, w);
    for (out_row, i) in keep.clone().enumerate() {
        values.data_mut()[out_row * w..(out_row + 1) * w]
            .copy_from_slice(&base.row(i)[keep.start..keep.end]);
    }
    values
}

/// Extends an existing `m x m` Gram matrix to cover `total >= m` items,
/// computing only the new rows/columns (`n(n+1)/2 - m(m+1)/2` entries
/// instead of the full recomputation). `f` is indexed over the *combined*
/// item list, so `f(i, j)` with `i, j < m` is never called.
pub fn gram_extend<F>(pool: &WorkerPool, base: &Matrix, total: usize, tile: usize, f: F) -> Matrix
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let m = base.rows();
    assert!(base.is_square(), "base Gram matrix must be square");
    assert!(total >= m, "cannot shrink a Gram matrix via extension");
    let n = total;
    let mut values = Matrix::zeros(n, n);
    for i in 0..m {
        let src = base.row(i);
        values.data_mut()[i * n..i * n + m].copy_from_slice(src);
    }
    if n == m {
        return values;
    }

    let tile = tile.max(1);
    // New entries live in the column strip j in [m, n); tile that strip.
    let row_blocks = n.div_ceil(tile);
    let col_blocks = (n - m).div_ceil(tile);
    let tiles: Vec<(usize, usize)> = (0..row_blocks)
        .flat_map(|bi| (0..col_blocks).map(move |bj| (bi, bj)))
        .filter(|&(bi, bj)| bi * tile < m + (bj + 1) * tile)
        .collect();

    let out = TileOutput(values.data_mut().as_mut_ptr());
    let tile_hist = crate::obs::tile_eval_histogram();
    pool.scoped_run(tiles.len(), &|t| {
        let _timer = crate::obs::HistogramTimer::start(tile_hist);
        let (bi, bj) = tiles[t];
        let row_end = ((bi + 1) * tile).min(n);
        let col_start = m + bj * tile;
        let col_end = (m + (bj + 1) * tile).min(n);
        for i in bi * tile..row_end {
            for j in col_start.max(i)..col_end {
                let v = f(i, j);
                // SAFETY: same disjoint-tile argument as gram_tiled, over
                // the strip j >= m.
                unsafe {
                    out.write(i * n + j, v);
                    out.write(j * n + i, v);
                }
            }
        }
    });
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_tile_floor_tracks_the_simd_lane_width() {
        let t = min_batch_tile();
        let lanes = haqjsk_linalg::max_batch_lanes();
        // Smallest T whose pair count covers four full lane chunks.
        assert!(t * (t + 1) / 2 >= 4 * lanes);
        assert!((t - 1) * t / 2 < 4 * lanes);
        for workers in [1, 4, 16] {
            for n in [0, 5, 100, 1000] {
                assert!(auto_tile_width_batched(n, workers) >= t);
                assert!(auto_tile_width_batched(n, workers) >= auto_tile_width(n, workers));
            }
        }
    }
}
