//! The [`Engine`]: the single execution substrate for kernel computation.
//!
//! An engine owns a [`WorkerPool`] and exposes the Gram-matrix entry points
//! every kernel in the workspace routes through: tiled parallel computation,
//! the serial reference path, incremental extension for streaming
//! out-of-sample workloads, and a parallel map for per-graph feature
//! extraction. A lazily initialised process-global engine
//! ([`Engine::global`]) lets callers share one pool instead of spawning
//! scoped threads per Gram matrix, with the worker count controlled by the
//! `HAQJSK_THREADS` environment variable (read once, at first use).

use crate::gram;
use crate::pool::{default_thread_count, WorkerPool};
use haqjsk_linalg::Matrix;
use std::sync::OnceLock;

/// A worker pool plus the Gram scheduling policy built on it.
pub struct Engine {
    pool: WorkerPool,
    tile_override: Option<usize>,
}

static GLOBAL_ENGINE: OnceLock<Engine> = OnceLock::new();

impl Engine {
    /// Creates an engine with `threads` workers and automatic tile sizing.
    pub fn new(threads: usize) -> Self {
        Engine {
            pool: WorkerPool::new(threads),
            tile_override: None,
        }
    }

    /// Creates an engine with a fixed Gram tile width (mainly for tests and
    /// benchmarks; the automatic choice is right for production use).
    pub fn with_tile(threads: usize, tile: usize) -> Self {
        Engine {
            pool: WorkerPool::new(threads),
            tile_override: Some(tile.max(1)),
        }
    }

    /// The process-global engine, created on first use with
    /// [`default_thread_count`] workers (`HAQJSK_THREADS` override applies).
    pub fn global() -> &'static Engine {
        GLOBAL_ENGINE.get_or_init(|| Engine::new(default_thread_count()))
    }

    /// The underlying pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn tile_for(&self, n: usize) -> usize {
        self.tile_override
            .unwrap_or_else(|| gram::auto_tile_width(n, self.pool.threads()))
    }

    /// Computes the symmetric `n x n` Gram matrix of `f` with tiled
    /// parallel scheduling.
    pub fn gram<F>(&self, n: usize, f: F) -> Matrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        gram::gram_tiled(&self.pool, n, self.tile_for(n), f)
    }

    /// Serial reference path; bit-identical to [`Engine::gram`] for any
    /// deterministic `f` (the engine tests assert this).
    pub fn gram_serial<F>(n: usize, f: F) -> Matrix
    where
        F: Fn(usize, usize) -> f64,
    {
        gram::gram_serial(n, f)
    }

    /// Extends an `m x m` Gram matrix to `total` items, computing only the
    /// new rows/columns. `f` is indexed over the combined item list and is
    /// never called with both indices `< m`.
    pub fn gram_extend<F>(&self, base: &Matrix, total: usize, f: F) -> Matrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        gram::gram_extend(&self.pool, base, total, self.tile_for(total), f)
    }

    /// Runs `f` over `0..count` in parallel and collects results in index
    /// order — the per-graph feature-extraction companion to [`Engine::gram`].
    pub fn map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.pool.map(count, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_engine_is_shared_and_sized() {
        let a = Engine::global();
        let b = Engine::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn gram_parallel_matches_serial_exactly() {
        let f = |i: usize, j: usize| ((i * 31 + j * 17) as f64).sin() * 0.5 + (i + j) as f64;
        for n in [0usize, 1, 2, 7, 33] {
            let engine = Engine::with_tile(4, 3);
            let parallel = engine.gram(n, f);
            let serial = Engine::gram_serial(n, f);
            assert_eq!(parallel, serial, "n={n}");
        }
    }

    #[test]
    fn extension_matches_full_recomputation() {
        let f = |i: usize, j: usize| 1.0 / (1.0 + (i as f64 - j as f64).abs()) + (i * j) as f64;
        let engine = Engine::with_tile(4, 4);
        let full = engine.gram(20, f);
        let base = engine.gram(13, f);
        let extended = engine.gram_extend(&base, 20, f);
        assert_eq!(extended, full);
        // Extending by zero items returns the base unchanged.
        let unchanged = engine.gram_extend(&base, 13, f);
        assert_eq!(unchanged, base);
    }

    #[test]
    fn extension_never_recomputes_old_pairs() {
        let engine = Engine::with_tile(2, 4);
        let base = engine.gram(10, |i, j| (i + j) as f64);
        let extended = engine.gram_extend(&base, 14, |i, j| {
            assert!(
                i >= 10 || j >= 10,
                "old pair ({i},{j}) must come from the base matrix"
            );
            (i + j) as f64
        });
        assert_eq!(extended, engine.gram(14, |i, j| (i + j) as f64));
    }

    #[test]
    fn map_preserves_order() {
        let engine = Engine::new(4);
        let squares = engine.map(100, |i| i * i);
        assert_eq!(squares.len(), 100);
        for (i, &v) in squares.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let engine = Engine::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.gram(12, |i, j| {
                if i == 5 && j == 7 {
                    panic!("injected failure");
                }
                0.0
            })
        }));
        assert!(result.is_err(), "the panic must reach the caller");
        // The pool survives a panicked batch.
        let ok = engine.gram(6, |i, j| (i + j) as f64);
        assert_eq!(ok, Engine::gram_serial(6, |i, j| (i + j) as f64));
    }
}
