//! The [`Engine`]: the single execution substrate for kernel computation.
//!
//! An engine owns a [`WorkerPool`], a default [`BackendKind`] and the tile
//! sizing policy, and exposes the Gram-matrix entry points every kernel in
//! the workspace routes through: full computation, incremental extension
//! and sliding-window retention for streaming workloads, and a parallel map
//! for per-graph feature extraction. *How* a Gram matrix is scheduled is
//! delegated to a pluggable [`GramBackend`](crate::backend::GramBackend) —
//! serial reference, the tiled worker-pool scheduler, or the batched-tile
//! strategy that extracts all per-item features as one parallel batch
//! before the pair loop. Every entry point has an `_on` variant taking an
//! explicit backend override; the plain variants use the engine's default.
//!
//! A lazily initialised process-global engine ([`Engine::global`]) lets
//! callers share one pool instead of spawning scoped threads per Gram
//! matrix. Its worker count comes from the `HAQJSK_THREADS` environment
//! variable and its default backend from `HAQJSK_BACKEND` (both read once,
//! at first use).

use crate::backend::BackendKind;
use crate::gram;
use crate::pool::{default_thread_count, WorkerPool};
use haqjsk_linalg::Matrix;
use std::sync::OnceLock;

/// A worker pool plus the Gram scheduling policy built on it.
pub struct Engine {
    pool: WorkerPool,
    tile_override: Option<usize>,
    backend: BackendKind,
}

static GLOBAL_ENGINE: OnceLock<Engine> = OnceLock::new();

/// Configures and builds an [`Engine`]; obtained from [`Engine::builder`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineBuilder {
    threads: Option<usize>,
    tile: Option<usize>,
    backend: Option<BackendKind>,
}

impl EngineBuilder {
    /// Sets the worker count (default: [`default_thread_count`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Fixes the Gram tile width (default: automatic per-matrix sizing).
    pub fn tile(mut self, tile: usize) -> Self {
        self.tile = Some(tile.max(1));
        self
    }

    /// Sets the default execution backend (default: the `HAQJSK_BACKEND`
    /// environment override, falling back to [`BackendKind::TiledPool`]).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    /// Panics when no explicit backend was configured and `HAQJSK_BACKEND`
    /// is set to an unrecognised value — a misconfigured backend (say, a
    /// `dist:` typo) must fail loudly at engine build time instead of
    /// silently executing on a local fallback. Use
    /// [`EngineBuilder::try_build`] to handle the error instead.
    pub fn build(self) -> Engine {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`EngineBuilder::build`], with environment misconfiguration as an
    /// error instead of a panic.
    pub fn try_build(self) -> Result<Engine, String> {
        let backend = match self.backend {
            Some(backend) => backend,
            None => BackendKind::from_env()?.unwrap_or_default(),
        };
        Ok(Engine {
            pool: WorkerPool::new(self.threads.unwrap_or_else(default_thread_count)),
            tile_override: self.tile,
            backend,
        })
    }
}

impl Engine {
    /// Starts building an engine with explicit configuration.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Creates an engine with `threads` workers, automatic tile sizing and
    /// the default backend (`HAQJSK_BACKEND` override applies).
    pub fn new(threads: usize) -> Self {
        Engine::builder().threads(threads).build()
    }

    /// Creates an engine with a fixed Gram tile width (mainly for tests and
    /// benchmarks; the automatic choice is right for production use).
    pub fn with_tile(threads: usize, tile: usize) -> Self {
        Engine::builder().threads(threads).tile(tile).build()
    }

    /// The process-global engine, created on first use with
    /// [`default_thread_count`] workers (`HAQJSK_THREADS` override applies)
    /// and the environment-selected backend.
    pub fn global() -> &'static Engine {
        GLOBAL_ENGINE.get_or_init(|| Engine::builder().build())
    }

    /// The underlying pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The engine's default execution backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    fn tile_for(&self, n: usize) -> usize {
        self.tile_override
            .unwrap_or_else(|| gram::auto_tile_width(n, self.pool.threads()))
    }

    /// Tile width for whole-tile evaluation: explicit override, or the
    /// batch-aware automatic choice (coarser than [`Engine::tile_for`] so
    /// batched pair kernels can fill their lanes).
    fn tile_for_batched(&self, n: usize) -> usize {
        self.tile_override
            .unwrap_or_else(|| gram::auto_tile_width_batched(n, self.pool.threads()))
    }

    fn resolve(&self, backend: Option<BackendKind>) -> BackendKind {
        backend.unwrap_or(self.backend)
    }

    /// Computes the symmetric `n x n` Gram matrix of `f` on the engine's
    /// default backend.
    pub fn gram<F>(&self, n: usize, f: F) -> Matrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        self.gram_on(None, n, f)
    }

    /// Computes the Gram matrix on an explicit backend (`None` = the
    /// engine's default).
    pub fn gram_on<F>(&self, backend: Option<BackendKind>, n: usize, f: F) -> Matrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let backend = self.resolve(backend);
        let _timer = crate::obs::HistogramTimer::start(crate::obs::gram_build_histogram(backend));
        backend
            .implementation()
            .gram(&self.pool, n, self.tile_for(n), None, &f)
    }

    /// Computes the Gram matrix with a per-item `prefetch` hook: backends
    /// that batch feature extraction ([`BackendKind::BatchedTile`]) run
    /// `prefetch(i)` for every item as one parallel batch before the pair
    /// loop; the other backends skip it and let `f` compute features
    /// lazily. `f` must therefore stay correct when the hook never runs.
    pub fn gram_prefetched<P, F>(
        &self,
        backend: Option<BackendKind>,
        n: usize,
        prefetch: P,
        f: F,
    ) -> Matrix
    where
        P: Fn(usize) + Sync,
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let backend = self.resolve(backend);
        let _timer = crate::obs::HistogramTimer::start(crate::obs::gram_build_histogram(backend));
        backend
            .implementation()
            .gram(&self.pool, n, self.tile_for(n), Some(&prefetch), &f)
    }

    /// Computes the Gram matrix through a whole-tile evaluator: the chosen
    /// backend hands each scheduling tile's upper-triangle index pairs to
    /// `tiles` in one call (after optionally batching `prefetch` over all
    /// items), so kernels that batch per-pair work — the SoA batched
    /// eigensolves of the quantum kernels, a future GPU dispatch — receive
    /// whole tiles instead of single pairs. The evaluator must be
    /// byte-identical to the kernel's per-pair entry function; every
    /// backend then produces the per-pair path's exact matrix.
    pub fn gram_tiles<P, T>(
        &self,
        backend: Option<BackendKind>,
        n: usize,
        prefetch: P,
        tiles: T,
    ) -> Matrix
    where
        P: Fn(usize) + Sync,
        T: crate::backend::TileEvaluator,
    {
        self.gram_tiles_spec(backend, n, prefetch, tiles, None)
    }

    /// [`Engine::gram_tiles`] with an optional declarative
    /// [`RemoteGram`](crate::backend::RemoteGram) description of the same
    /// computation: local backends ignore it, a distributed backend uses it
    /// to ship tiles to worker processes (`eval` stays the byte-identical
    /// local fallback for tiles a worker never returns).
    pub fn gram_tiles_spec<P, T>(
        &self,
        backend: Option<BackendKind>,
        n: usize,
        prefetch: P,
        tiles: T,
        spec: Option<&crate::backend::RemoteGram<'_>>,
    ) -> Matrix
    where
        P: Fn(usize) + Sync,
        T: crate::backend::TileEvaluator,
    {
        let backend = self.resolve(backend);
        let _timer = crate::obs::HistogramTimer::start(crate::obs::gram_build_histogram(backend));
        backend.implementation().gram_tiles_spec(
            &self.pool,
            n,
            self.tile_for_batched(n),
            Some(&prefetch),
            &tiles,
            spec,
        )
    }

    /// Serial reference path; bit-identical to [`Engine::gram`] for any
    /// deterministic `f` (the engine tests assert this).
    pub fn gram_serial<F>(n: usize, f: F) -> Matrix
    where
        F: Fn(usize, usize) -> f64,
    {
        gram::gram_serial(n, f)
    }

    /// Extends an `m x m` Gram matrix to `total` items on the engine's
    /// default backend, computing only the new rows/columns. `f` is indexed
    /// over the combined item list and is never called with both indices
    /// `< m`.
    pub fn gram_extend<F>(&self, base: &Matrix, total: usize, f: F) -> Matrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        self.gram_extend_on(None, base, total, f)
    }

    /// [`Engine::gram_extend`] on an explicit backend (`None` = the
    /// engine's default). Features are computed lazily by `f`; use
    /// [`Engine::gram_extend_prefetched`] to hand batched backends a
    /// feature-extraction hook.
    pub fn gram_extend_on<F>(
        &self,
        backend: Option<BackendKind>,
        base: &Matrix,
        total: usize,
        f: F,
    ) -> Matrix
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let backend = self.resolve(backend);
        let _timer = crate::obs::HistogramTimer::start(crate::obs::gram_build_histogram(backend));
        backend.implementation().gram_extend(
            &self.pool,
            base,
            total,
            self.tile_for(total),
            None,
            &f,
        )
    }

    /// [`Engine::gram_extend_on`] with a per-item `prefetch` hook over the
    /// *combined* index range `0..total` (old rows pair with new columns):
    /// batched backends run it as one parallel batch before the strip of
    /// new entries is computed, the others skip it.
    pub fn gram_extend_prefetched<P, F>(
        &self,
        backend: Option<BackendKind>,
        base: &Matrix,
        total: usize,
        prefetch: P,
        f: F,
    ) -> Matrix
    where
        P: Fn(usize) + Sync,
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let backend = self.resolve(backend);
        let _timer = crate::obs::HistogramTimer::start(crate::obs::gram_build_histogram(backend));
        backend.implementation().gram_extend(
            &self.pool,
            base,
            total,
            self.tile_for(total),
            Some(&prefetch),
            &f,
        )
    }

    /// Shrinks a Gram matrix to the contiguous index window `keep` —
    /// sliding-window row+column eviction, the counterpart of
    /// [`Engine::gram_extend`] for streaming deployments that must bound
    /// their working set. Pure data movement: no kernel re-evaluation.
    pub fn gram_retain(&self, base: &Matrix, keep: std::ops::Range<usize>) -> Matrix {
        gram::gram_shrink(base, keep)
    }

    /// Runs `f` over `0..count` on the engine's default backend and
    /// collects results in index order — the per-graph feature-extraction
    /// companion to [`Engine::gram`].
    pub fn map<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_on(None, count, f)
    }

    /// [`Engine::map`] on an explicit backend (`None` = engine default).
    pub fn map_on<T, F>(&self, backend: Option<BackendKind>, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let backend = self.resolve(backend).implementation();
        crate::pool::collect_indexed(count, f, |fill| backend.for_each(&self.pool, count, fill))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_engine_is_shared_and_sized() {
        let a = Engine::global();
        let b = Engine::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn builder_configures_backend_and_threads() {
        let engine = Engine::builder()
            .threads(2)
            .tile(4)
            .backend(BackendKind::Serial)
            .build();
        assert_eq!(engine.threads(), 2);
        assert_eq!(engine.backend(), BackendKind::Serial);
        let f = |i: usize, j: usize| (i * 3 + j) as f64;
        assert_eq!(engine.gram(6, f), Engine::gram_serial(6, f));
    }

    #[test]
    fn gram_parallel_matches_serial_exactly() {
        let f = |i: usize, j: usize| ((i * 31 + j * 17) as f64).sin() * 0.5 + (i + j) as f64;
        for n in [0usize, 1, 2, 7, 33] {
            let engine = Engine::with_tile(4, 3);
            for backend in BackendKind::ALL {
                let out = engine.gram_on(Some(backend), n, f);
                let serial = Engine::gram_serial(n, f);
                assert_eq!(out, serial, "n={n} backend={backend}");
            }
        }
    }

    #[test]
    fn extension_matches_full_recomputation() {
        let f = |i: usize, j: usize| 1.0 / (1.0 + (i as f64 - j as f64).abs()) + (i * j) as f64;
        let engine = Engine::with_tile(4, 4);
        let full = engine.gram(20, f);
        for backend in BackendKind::ALL {
            let base = engine.gram_on(Some(backend), 13, f);
            let extended = engine.gram_extend_on(Some(backend), &base, 20, f);
            assert_eq!(extended, full, "backend={backend}");
            // Extending by zero items returns the base unchanged.
            let unchanged = engine.gram_extend_on(Some(backend), &base, 13, f);
            assert_eq!(unchanged, base, "backend={backend}");
        }
    }

    #[test]
    fn extension_never_recomputes_old_pairs() {
        let engine = Engine::with_tile(2, 4);
        for backend in BackendKind::ALL {
            let base = engine.gram_on(Some(backend), 10, |i, j| (i + j) as f64);
            let extended = engine.gram_extend_on(Some(backend), &base, 14, |i, j| {
                assert!(
                    i >= 10 || j >= 10,
                    "old pair ({i},{j}) must come from the base matrix"
                );
                (i + j) as f64
            });
            assert_eq!(extended, engine.gram(14, |i, j| (i + j) as f64));
        }
    }

    #[test]
    fn retain_keeps_the_sliding_window() {
        let engine = Engine::with_tile(2, 3);
        let f = |i: usize, j: usize| (i * 100 + j) as f64 + (j * 100 + i) as f64;
        let full = engine.gram(12, f);
        // Dropping the first 5 items equals computing the Gram of the
        // shifted index set directly.
        let window = engine.gram_retain(&full, 5..12);
        let expected = engine.gram(7, |i, j| f(i + 5, j + 5));
        assert_eq!(window, expected);
        // Degenerate windows.
        assert_eq!(engine.gram_retain(&full, 0..12), full);
        assert_eq!(engine.gram_retain(&full, 4..4).rows(), 0);
    }

    #[test]
    fn prefetched_gram_matches_plain_gram_on_every_backend() {
        let engine = Engine::with_tile(3, 4);
        let f = |i: usize, j: usize| ((i + 2 * j) as f64).sqrt();
        let reference = Engine::gram_serial(15, f);
        for backend in BackendKind::ALL {
            let out = engine.gram_prefetched(Some(backend), 15, |_i| {}, f);
            assert_eq!(out, reference, "backend={backend}");
            let base = engine.gram_on(Some(backend), 9, f);
            let extended = engine.gram_extend_prefetched(Some(backend), &base, 15, |_i| {}, f);
            assert_eq!(extended, reference, "extend backend={backend}");
        }
    }

    #[test]
    fn map_preserves_order() {
        let engine = Engine::new(4);
        for backend in BackendKind::ALL {
            let squares = engine.map_on(Some(backend), 100, |i| i * i);
            assert_eq!(squares.len(), 100);
            for (i, &v) in squares.iter().enumerate() {
                assert_eq!(v, i * i, "backend={backend}");
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let engine = Engine::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.gram(12, |i, j| {
                if i == 5 && j == 7 {
                    panic!("injected failure");
                }
                0.0
            })
        }));
        assert!(result.is_err(), "the panic must reach the caller");
        // The pool survives a panicked batch.
        let ok = engine.gram(6, |i, j| (i + j) as f64);
        assert_eq!(ok, Engine::gram_serial(6, |i, j| (i + j) as f64));
    }
}
