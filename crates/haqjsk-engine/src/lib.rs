//! # haqjsk-engine
//!
//! The parallel Gram-computation engine: the single execution substrate for
//! every kernel in the HAQJSK workspace.
//!
//! The HAQJSK pipeline is dominated by `n(n+1)/2` pairwise kernel
//! evaluations, each of which historically re-derived per-graph features
//! (CTQW density matrices, depth-based vertex representations) that are in
//! fact reusable across every pair. This crate centralises the machinery
//! that fixes that:
//!
//! * [`pool`] — a reusable scoped-worker thread pool ([`WorkerPool`]) with
//!   the worker count configurable through the `HAQJSK_THREADS` environment
//!   variable,
//! * [`backend`] — **pluggable Gram execution backends** behind the
//!   [`GramBackend`] trait: the serial reference path, the tiled
//!   worker-pool scheduler, and a batched-tile strategy that runs all
//!   per-item feature extractions as one parallel batch before the pair
//!   loop. Selected per engine (builder) or per call, with a process-wide
//!   `HAQJSK_BACKEND` override; all backends are byte-identical for
//!   deterministic kernels, so swapping them is purely a scheduling choice,
//! * [`gram`] + [`engine`] — the tile scheduling primitives and the
//!   [`Engine`] that ties pool + backend + tile policy together, including
//!   **incremental extension** (`gram_extend`, appending rows/columns) and
//!   **sliding-window retention** (`gram_retain`, evicting rows/columns)
//!   for streaming workloads,
//! * [`cache`] — a **sharded, budgeted** per-graph feature cache
//!   ([`FeatureCache`]) keyed by a structural graph hash
//!   ([`hash::graph_key`]): the key space is range-partitioned into
//!   independently locked shards, each maintaining an LRU list and its
//!   slice of an optional byte budget (value sizes via [`CacheWeight`]),
//!   with exactly-once compute semantics per resident key and full
//!   hit/miss/eviction instrumentation per shard,
//! * [`json`] + [`serve`] — the JSON-lines TCP serving substrate used by the
//!   `haqjsk-serve` binary (transport loop, graph wire format, dependency-
//!   free JSON).
//!
//! ## Architecture: one seam per scaling axis
//!
//! The engine deliberately separates *what* is computed (the caller's entry
//! function), *how* it is scheduled (the [`GramBackend`]), and *what is
//! remembered* (the [`FeatureCache`]):
//!
//! ```text
//!   callers (kernels, model, serving)
//!        │ entry fn + optional prefetch hook
//!        ▼
//!   Engine ── backend: Serial | TiledPool | BatchedTile ──► WorkerPool
//!        │                                                     │
//!        └────────── FeatureCache (N key-range shards, ────────┘
//!                    LRU + byte budget per shard)
//! ```
//!
//! New execution strategies (SIMD/GPU batched eigendecomposition,
//! distributed tiles) implement [`GramBackend`] and slot in without
//! touching any caller; new memory policies land in the cache layer without
//! touching scheduling.
//!
//! Higher layers route through [`Engine::global`]:
//! `haqjsk-kernels::kernel::gram_from_pairwise` (the default Gram path of
//! every [`GraphKernel`](../haqjsk_kernels/trait.GraphKernel.html)),
//! `haqjsk-core`'s `HaqjskModel::gram_matrix`, and the benchmark binaries.

pub mod backend;
pub mod cache;
pub mod engine;
pub mod gram;
pub mod hash;
pub mod http;
pub mod json;
pub mod obs;
pub mod pool;
pub mod serve;

pub use backend::{
    distributed_backend, install_distributed_backend, BackendKind, GramBackend, RemoteArtifact,
    RemoteGram, TileEvaluator, BACKEND_ENV_VAR,
};
pub use cache::{
    parse_byte_size, AdmissionPolicy, CacheConfig, CacheStats, CacheWeight, FeatureCache,
    FrequencySketch, LruList, ShardStats, CACHE_ADMISSION_ENV_VAR, CACHE_BUDGET_ENV_VAR,
    CACHE_SHARDS_ENV_VAR,
};
pub use engine::{Engine, EngineBuilder};
pub use hash::{graph_key, GraphKey};
pub use http::{HttpResponder, HttpResponse, HttpServer};
pub use json::Json;
pub use pool::{default_thread_count, WorkerPool, THREADS_ENV_VAR};
pub use serve::{
    error_response, graph_from_json, graph_to_json, DrainReport, Handler, ServeConfig,
    ServeControl, Server,
};
