//! # haqjsk-engine
//!
//! The parallel Gram-computation engine: the single execution substrate for
//! every kernel in the HAQJSK workspace.
//!
//! The HAQJSK pipeline is dominated by `n(n+1)/2` pairwise kernel
//! evaluations, each of which historically re-derived per-graph features
//! (CTQW density matrices, depth-based vertex representations) that are in
//! fact reusable across every pair. This crate centralises the machinery
//! that fixes that:
//!
//! * [`pool`] — a reusable scoped-worker thread pool ([`WorkerPool`]) with
//!   the worker count configurable through the `HAQJSK_THREADS` environment
//!   variable,
//! * [`gram`] + [`engine`] — a tiled job scheduler computing Gram matrices
//!   in cache-friendly blocks, a serial reference path, and an
//!   **incremental extension** API appending out-of-sample rows/columns to
//!   an existing Gram matrix for streaming workloads ([`Engine`]),
//! * [`cache`] — a per-graph feature cache ([`FeatureCache`]) keyed by a
//!   structural graph hash ([`hash::graph_key`]), memoising expensive
//!   per-graph state with exactly-once compute semantics and hit/miss
//!   instrumentation,
//! * [`json`] + [`serve`] — the JSON-lines TCP serving substrate used by the
//!   `haqjsk-serve` binary (transport loop, graph wire format, dependency-
//!   free JSON).
//!
//! Higher layers route through [`Engine::global`]:
//! `haqjsk-kernels::kernel::gram_from_pairwise` (the default Gram path of
//! every [`GraphKernel`](../haqjsk_kernels/trait.GraphKernel.html)),
//! `haqjsk-core`'s `HaqjskModel::gram_matrix`, and the benchmark binaries.

pub mod cache;
pub mod engine;
pub mod gram;
pub mod hash;
pub mod json;
pub mod pool;
pub mod serve;

pub use cache::{CacheStats, FeatureCache};
pub use engine::Engine;
pub use hash::{graph_key, GraphKey};
pub use json::Json;
pub use pool::{default_thread_count, WorkerPool, THREADS_ENV_VAR};
pub use serve::{graph_from_json, graph_to_json, Handler, Server};
