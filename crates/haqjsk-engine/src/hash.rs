//! Structural graph hashing for feature-cache keys.
//!
//! The cache key must be (a) deterministic across runs, (b) identical for
//! structurally identical graphs (same vertex count, same edge set, same
//! labels), and (c) wide enough that accidental collisions are not a
//! practical concern. A 128-bit FNV-1a over the canonical edge list
//! satisfies all three. The hash is *not* isomorphism-invariant — two
//! relabelled copies of the same graph hash differently — which is exactly
//! right for caching: per-graph features (CTQW density matrices, depth-based
//! representations) are themselves computed on the labelled adjacency
//! structure.

use haqjsk_graph::Graph;

/// A 128-bit structural digest of a graph, usable as a cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphKey(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

fn fnv_mix(mut state: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        state ^= b as u128;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

fn fnv_mix_usize(state: u128, value: usize) -> u128 {
    fnv_mix(state, &(value as u64).to_le_bytes())
}

/// Computes the structural key of a graph.
pub fn graph_key(graph: &Graph) -> GraphKey {
    let mut state = FNV_OFFSET;
    state = fnv_mix_usize(state, graph.num_vertices());
    for u in 0..graph.num_vertices() {
        for v in graph.neighbors(u) {
            if v > u {
                state = fnv_mix_usize(state, u);
                state = fnv_mix_usize(state, v);
            }
        }
    }
    match graph.labels() {
        Some(labels) => {
            state = fnv_mix(state, b"L");
            for &l in labels {
                state = fnv_mix_usize(state, l);
            }
        }
        None => {
            state = fnv_mix(state, b"U");
        }
    }
    GraphKey(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph};

    #[test]
    fn identical_graphs_share_a_key() {
        assert_eq!(graph_key(&cycle_graph(9)), graph_key(&cycle_graph(9)));
    }

    #[test]
    fn structure_changes_the_key() {
        assert_ne!(graph_key(&cycle_graph(9)), graph_key(&path_graph(9)));
        assert_ne!(graph_key(&cycle_graph(9)), graph_key(&cycle_graph(10)));
    }

    #[test]
    fn labels_change_the_key() {
        let unlabelled = path_graph(5);
        let mut labelled = path_graph(5);
        labelled.set_labels(vec![1, 2, 3, 4, 5]).unwrap();
        assert_ne!(graph_key(&unlabelled), graph_key(&labelled));
    }

    #[test]
    fn relabelling_changes_the_key() {
        // Structural, not isomorphism-invariant: a permuted copy caches
        // separately because its features differ entry-wise. (Moving the
        // star's hub changes the edge set; a symmetric permutation of a
        // path would not.)
        let g = haqjsk_graph::generators::star_graph(5);
        let permuted = g.permute(&[4, 1, 2, 3, 0]).unwrap();
        assert_ne!(graph_key(&g), graph_key(&permuted));
    }
}
