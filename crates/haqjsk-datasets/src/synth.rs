//! Class-conditional synthetic graph generation.
//!
//! For every dataset specification we draw graphs whose size and edge-count
//! distributions match Table II and whose *class* determines a structural
//! parameter of the generator — ring/motif density for the bioinformatics
//! stand-ins, lattice regularity vs rewiring for the computer-vision shape
//! stand-ins, and community structure / hub density for the social-network
//! stand-ins. A kernel that captures the relevant structure therefore
//! separates the classes, which is what the paper's experiments measure.

use crate::spec::{DatasetDomain, DatasetSpec};
use haqjsk_graph::generators::{
    add_random_edges, barabasi_albert, random_tree, rewire_edges, stochastic_block_model,
    watts_strogatz,
};
use haqjsk_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a full dataset (graphs plus class labels) from a specification.
/// The generation is deterministic given the seed; classes are balanced by
/// construction.
pub fn generate_dataset(spec: &DatasetSpec, seed: u64) -> (Vec<Graph>, Vec<usize>) {
    let mut graphs = Vec::with_capacity(spec.num_graphs);
    let mut classes = Vec::with_capacity(spec.num_graphs);
    for index in 0..spec.num_graphs {
        let class = index % spec.num_classes;
        let graph_seed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(index as u64 + 1);
        let graph = generate_graph(spec, class, graph_seed);
        graphs.push(graph);
        classes.push(class);
    }
    (graphs, classes)
}

/// Generates a single graph of the given class.
pub fn generate_graph(spec: &DatasetSpec, class: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = sample_size(spec, &mut rng);
    let target_edges = target_edge_count(spec, n);
    let class_fraction = class as f64 / spec.num_classes.max(1) as f64;

    let mut graph = match spec.domain {
        DatasetDomain::Bioinformatics => bio_graph(n, target_edges, class, class_fraction, seed),
        DatasetDomain::ComputerVision => cv_graph(n, target_edges, class_fraction, seed),
        DatasetDomain::SocialNetwork => sn_graph(n, target_edges, class, class_fraction, seed),
    };

    if spec.has_vertex_labels {
        // Molecule-style discrete labels: a small alphabet whose frequencies
        // drift with the class, mimicking datasets such as MUTAG / PTC.
        let alphabet = 7usize;
        let labels: Vec<usize> = (0..graph.num_vertices())
            .map(|_| {
                let shift = (class_fraction * alphabet as f64) as usize;
                let raw: usize = rng.gen_range(0..alphabet);
                (raw + shift) % alphabet
            })
            .collect();
        graph
            .set_labels(labels)
            .expect("label vector matches vertex count");
    }
    graph
}

/// Samples a vertex count around the specification's mean, clipped to
/// `[4, max_vertices]`.
fn sample_size(spec: &DatasetSpec, rng: &mut StdRng) -> usize {
    let mean = spec.mean_vertices.max(4.0);
    let low = (0.6 * mean).max(4.0);
    let high = (1.5 * mean).min(spec.max_vertices as f64).max(low + 1.0);
    rng.gen_range(low..high).round() as usize
}

/// Scales the specification's mean edge count to the sampled vertex count.
fn target_edge_count(spec: &DatasetSpec, n: usize) -> usize {
    let ratio = spec.mean_edges / spec.mean_vertices.max(1.0);
    ((ratio * n as f64).round() as usize).max(n.saturating_sub(1))
}

/// Bioinformatics stand-in: a random spanning tree (molecular backbone) plus
/// class-dependent ring closures and triangle motifs.
fn bio_graph(n: usize, target_edges: usize, class: usize, class_fraction: f64, seed: u64) -> Graph {
    let mut graph = random_tree(n, seed);
    let backbone_edges = graph.num_edges();
    let extra = target_edges.saturating_sub(backbone_edges);
    // Higher classes get a larger share of their extra edges as short ring
    // closures (triangles), lower classes as long-range chords.
    let triangles = ((extra as f64) * (0.25 + 0.5 * class_fraction)).round() as usize;
    let chords = extra.saturating_sub(triangles);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB10);
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < triangles && guard < 50 * (triangles + 1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let neighbours: Vec<usize> = graph.neighbors(u).collect();
        if neighbours.len() < 2 {
            continue;
        }
        let a = neighbours[rng.gen_range(0..neighbours.len())];
        let b = neighbours[rng.gen_range(0..neighbours.len())];
        if a != b && !graph.has_edge(a, b) {
            graph.add_edge(a, b).expect("indices in range");
            added += 1;
        }
    }

    add_random_edges(&graph, chords, seed ^ (class as u64 + 0xC0))
}

/// Computer-vision shape stand-in: a small-world ring lattice (a discretised
/// contour / mesh) whose neighbourhood width and rewiring probability are
/// class-dependent.
fn cv_graph(n: usize, target_edges: usize, class_fraction: f64, seed: u64) -> Graph {
    // A ring lattice with k/2 neighbours per side has n*k/2 edges; derive k
    // from the edge target and let the class control the rewiring rate (how
    // "irregular" the shape boundary is).
    let k = ((2.0 * target_edges as f64 / n.max(1) as f64).round() as usize)
        .clamp(2, n.saturating_sub(1).max(2));
    let beta = 0.02 + 0.45 * class_fraction;
    let graph = watts_strogatz(n, k, beta, seed);
    // A class-dependent number of extra rewirings sharpens the signal for
    // fine-grained (20/30-class) shape datasets.
    let extra_rewires = (class_fraction * n as f64 * 0.2).round() as usize;
    rewire_edges(&graph, extra_rewires, seed ^ 0xCF)
}

/// Social-network stand-in: either a multi-community stochastic block model
/// or a preferential-attachment hub graph, with the class controlling the
/// community count and density.
fn sn_graph(n: usize, target_edges: usize, class: usize, class_fraction: f64, seed: u64) -> Graph {
    let max_pairs = (n * n.saturating_sub(1) / 2).max(1);
    let density = (target_edges as f64 / max_pairs as f64).min(0.9);
    if class.is_multiple_of(2) {
        // Community-structured graphs: the class selects the block count.
        let blocks = 2 + class % 4;
        let base = n / blocks;
        let mut block_sizes = vec![base.max(1); blocks];
        block_sizes[0] += n - base * blocks;
        // Put most of the mass inside blocks; the exact split depends on the
        // class so densities differ across classes too.
        let p_in = (density * (2.0 + class_fraction)).min(0.95);
        let p_out = (density * 0.25).min(0.2);
        stochastic_block_model(&block_sizes, p_in, p_out, seed)
    } else {
        // Hub-dominated ego networks via preferential attachment.
        let m = ((target_edges as f64 / n.max(1) as f64).round() as usize).clamp(1, 8);
        let graph = barabasi_albert(n, m, seed);
        // Densify towards the target (ego networks in IMDB/COLLAB are dense).
        let deficit = target_edges.saturating_sub(graph.num_edges());
        add_random_edges(&graph, deficit / 2, seed ^ 0x50C1A1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use haqjsk_graph::analysis::corpus_statistics;

    fn small_spec(domain: DatasetDomain, classes: usize, labelled: bool) -> DatasetSpec {
        DatasetSpec {
            name: "TEST",
            num_graphs: 24,
            num_classes: classes,
            max_vertices: 30,
            mean_vertices: 16.0,
            mean_edges: 24.0,
            has_vertex_labels: labelled,
            domain,
        }
    }

    #[test]
    fn dataset_has_requested_shape_and_balanced_classes() {
        let spec = small_spec(DatasetDomain::Bioinformatics, 3, true);
        let (graphs, classes) = generate_dataset(&spec, 1);
        assert_eq!(graphs.len(), 24);
        assert_eq!(classes.len(), 24);
        for c in 0..3 {
            assert_eq!(classes.iter().filter(|&&x| x == c).count(), 8);
        }
        // Labelled spec produces vertex labels.
        assert!(graphs[0].labels().is_some());
        // Sizes respect the bounds.
        for g in &graphs {
            assert!(g.num_vertices() >= 4);
            assert!(g.num_vertices() <= 30);
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = small_spec(DatasetDomain::SocialNetwork, 2, false);
        let (a, _) = generate_dataset(&spec, 7);
        let (b, _) = generate_dataset(&spec, 7);
        let (c, _) = generate_dataset(&spec, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_statistics_are_in_the_right_ballpark() {
        let spec = small_spec(DatasetDomain::ComputerVision, 4, false);
        let (graphs, _) = generate_dataset(&spec, 3);
        let stats = corpus_statistics(&graphs);
        assert!((stats.mean_vertices - spec.mean_vertices).abs() < spec.mean_vertices * 0.5);
        assert!(stats.mean_edges > spec.mean_edges * 0.4);
        assert!(stats.mean_edges < spec.mean_edges * 2.5);
        assert!(stats.max_vertices <= spec.max_vertices);
    }

    #[test]
    fn classes_differ_structurally() {
        // Graphs of different classes should have measurably different
        // structure; compare densities between the extreme classes of a
        // many-class CV spec.
        let spec = DatasetSpec {
            num_graphs: 40,
            num_classes: 10,
            ..small_spec(DatasetDomain::ComputerVision, 10, false)
        };
        let (graphs, classes) = generate_dataset(&spec, 5);
        let clustering = |class: usize| -> f64 {
            let vals: Vec<f64> = graphs
                .iter()
                .zip(classes.iter())
                .filter(|(_, &c)| c == class)
                .map(|(g, _)| haqjsk_graph::analysis::clustering_coefficient(g))
                .collect();
            haqjsk_linalg_mean(&vals)
        };
        let low = clustering(0);
        let high = clustering(9);
        assert!(
            (low - high).abs() > 1e-3,
            "extreme classes should differ structurally: {low} vs {high}"
        );
    }

    fn haqjsk_linalg_mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    #[test]
    fn each_domain_generates_connected_enough_graphs() {
        for domain in [
            DatasetDomain::Bioinformatics,
            DatasetDomain::ComputerVision,
            DatasetDomain::SocialNetwork,
        ] {
            let spec = small_spec(domain, 2, false);
            let (graphs, _) = generate_dataset(&spec, 11);
            for g in &graphs {
                // Largest component should dominate: the kernels need some
                // structure to walk over.
                let (largest, _) = haqjsk_graph::analysis::largest_component(g);
                assert!(
                    largest.num_vertices() as f64 >= 0.5 * g.num_vertices() as f64,
                    "{domain:?}: fragmented graph"
                );
            }
        }
    }
}
