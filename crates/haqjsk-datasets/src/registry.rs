//! Name-based dataset lookup and scaled generation.

use crate::spec::{DatasetSpec, TABLE2_SPECS};
use crate::synth::generate_dataset;
use haqjsk_graph::Graph;

/// A generated dataset, bundling graphs, class labels and the specification
/// used to produce them.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Name of the benchmark the dataset stands in for.
    pub name: String,
    /// The (possibly scaled) specification used for generation.
    pub spec: DatasetSpec,
    /// The graphs.
    pub graphs: Vec<Graph>,
    /// Class label per graph.
    pub classes: Vec<usize>,
}

impl GeneratedDataset {
    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Number of distinct classes present.
    pub fn num_classes(&self) -> usize {
        let mut classes = self.classes.clone();
        classes.sort_unstable();
        classes.dedup();
        classes.len()
    }
}

/// Names of all twelve Table II datasets.
pub fn all_dataset_names() -> Vec<&'static str> {
    TABLE2_SPECS.iter().map(|s| s.name).collect()
}

/// Generates the synthetic stand-in for a named benchmark dataset.
///
/// `graph_divisor` / `size_divisor` down-scale the graph count and graph
/// sizes (1 = the paper's scale); `seed` drives the generation.
pub fn generate_by_name(
    name: &str,
    graph_divisor: usize,
    size_divisor: usize,
    seed: u64,
) -> Option<GeneratedDataset> {
    let spec = DatasetSpec::by_name(name)?.scaled(graph_divisor, size_divisor);
    let (graphs, classes) = generate_dataset(&spec, seed);
    Some(GeneratedDataset {
        name: name.to_string(),
        spec,
        graphs,
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_twelve() {
        let names = all_dataset_names();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"MUTAG"));
        assert!(names.contains(&"COLLAB"));
    }

    #[test]
    fn generate_by_name_respects_scaling() {
        let full = generate_by_name("MUTAG", 1, 1, 1).unwrap();
        assert_eq!(full.len(), 188);
        assert_eq!(full.num_classes(), 2);
        let small = generate_by_name("MUTAG", 10, 1, 1).unwrap();
        assert!(small.len() < full.len());
        assert!(small.len() >= 12);
        assert!(!small.is_empty());
        assert!(generate_by_name("NOPE", 1, 1, 1).is_none());
    }

    #[test]
    fn scaled_social_dataset_is_tractable() {
        let d = generate_by_name("IMDB-B", 20, 1, 3).unwrap();
        assert!(d.len() >= 12);
        assert_eq!(d.num_classes(), 2);
        for g in &d.graphs {
            assert!(g.num_vertices() <= d.spec.max_vertices);
        }
    }
}
