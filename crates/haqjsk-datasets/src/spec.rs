//! The dataset statistics of the paper's Table II, encoded as data.

/// Application domain of a benchmark dataset (the "Description" row of
/// Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetDomain {
    /// Bioinformatics graphs (molecules, protein structures, ...).
    Bioinformatics,
    /// Computer-vision shape graphs.
    ComputerVision,
    /// Social-network graphs.
    SocialNetwork,
}

impl DatasetDomain {
    /// Short tag used in the Table II rendering ("Bio", "CV", "SN").
    pub fn tag(self) -> &'static str {
        match self {
            DatasetDomain::Bioinformatics => "Bio",
            DatasetDomain::ComputerVision => "CV",
            DatasetDomain::SocialNetwork => "SN",
        }
    }
}

/// Target statistics for one benchmark dataset (one column of Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Number of graphs.
    pub num_graphs: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Maximum number of vertices reported in Table II.
    pub max_vertices: usize,
    /// Mean number of vertices reported in Table II.
    pub mean_vertices: f64,
    /// Mean number of edges reported in Table II.
    pub mean_edges: f64,
    /// Whether the original dataset carries discrete vertex labels.
    pub has_vertex_labels: bool,
    /// Application domain.
    pub domain: DatasetDomain,
}

/// The twelve dataset specifications of Table II, in the paper's order.
pub const TABLE2_SPECS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "MUTAG",
        num_graphs: 188,
        num_classes: 2,
        max_vertices: 28,
        mean_vertices: 17.93,
        mean_edges: 19.79,
        has_vertex_labels: true,
        domain: DatasetDomain::Bioinformatics,
    },
    DatasetSpec {
        name: "PPIs",
        num_graphs: 219,
        num_classes: 5,
        max_vertices: 218,
        mean_vertices: 109.63,
        mean_edges: 531.50,
        has_vertex_labels: false,
        domain: DatasetDomain::Bioinformatics,
    },
    DatasetSpec {
        name: "CATH2",
        num_graphs: 190,
        num_classes: 2,
        max_vertices: 568,
        mean_vertices: 308.03,
        mean_edges: 1254.8,
        has_vertex_labels: false,
        domain: DatasetDomain::Bioinformatics,
    },
    DatasetSpec {
        name: "PTC(MR)",
        num_graphs: 344,
        num_classes: 2,
        max_vertices: 109,
        mean_vertices: 25.56,
        mean_edges: 25.96,
        has_vertex_labels: true,
        domain: DatasetDomain::Bioinformatics,
    },
    DatasetSpec {
        name: "GatorBait",
        num_graphs: 100,
        num_classes: 30,
        max_vertices: 545,
        mean_vertices: 348.72,
        mean_edges: 796.11,
        has_vertex_labels: false,
        domain: DatasetDomain::ComputerVision,
    },
    DatasetSpec {
        name: "BAR31",
        num_graphs: 300,
        num_classes: 20,
        max_vertices: 220,
        mean_vertices: 95.42,
        mean_edges: 94.59,
        has_vertex_labels: false,
        domain: DatasetDomain::ComputerVision,
    },
    DatasetSpec {
        name: "BSPHERE31",
        num_graphs: 300,
        num_classes: 20,
        max_vertices: 227,
        mean_vertices: 99.83,
        mean_edges: 56.58,
        has_vertex_labels: false,
        domain: DatasetDomain::ComputerVision,
    },
    DatasetSpec {
        name: "GEOD31",
        num_graphs: 300,
        num_classes: 20,
        max_vertices: 380,
        mean_vertices: 57.24,
        mean_edges: 99.01,
        has_vertex_labels: false,
        domain: DatasetDomain::ComputerVision,
    },
    DatasetSpec {
        name: "IMDB-B",
        num_graphs: 1000,
        num_classes: 2,
        max_vertices: 136,
        mean_vertices: 19.77,
        mean_edges: 96.53,
        has_vertex_labels: false,
        domain: DatasetDomain::SocialNetwork,
    },
    DatasetSpec {
        name: "IMDB-M",
        num_graphs: 1500,
        num_classes: 3,
        max_vertices: 89,
        mean_vertices: 13.00,
        mean_edges: 65.93,
        has_vertex_labels: false,
        domain: DatasetDomain::SocialNetwork,
    },
    DatasetSpec {
        name: "RED-B",
        num_graphs: 2000,
        num_classes: 2,
        max_vertices: 3782,
        mean_vertices: 429.62,
        mean_edges: 497.75,
        has_vertex_labels: false,
        domain: DatasetDomain::SocialNetwork,
    },
    DatasetSpec {
        name: "COLLAB",
        num_graphs: 5000,
        num_classes: 2,
        max_vertices: 492,
        mean_vertices: 74.49,
        mean_edges: 2457.50,
        has_vertex_labels: false,
        domain: DatasetDomain::SocialNetwork,
    },
];

impl DatasetSpec {
    /// Looks up a specification by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
        TABLE2_SPECS
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Returns a down-scaled copy of the specification: graph count divided
    /// by `graph_divisor` and vertex counts divided by `size_divisor`
    /// (bounded below so every class keeps a handful of non-trivial graphs).
    /// The benchmark harness uses this to keep default runs quick while the
    /// `--full` flag reproduces the original scale.
    pub fn scaled(&self, graph_divisor: usize, size_divisor: usize) -> DatasetSpec {
        let graph_divisor = graph_divisor.max(1);
        let size_divisor = size_divisor.max(1);
        DatasetSpec {
            num_graphs: (self.num_graphs / graph_divisor).max(self.num_classes * 6),
            max_vertices: (self.max_vertices / size_divisor).max(10),
            mean_vertices: (self.mean_vertices / size_divisor as f64).max(8.0),
            mean_edges: (self.mean_edges / size_divisor as f64).max(8.0),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_datasets_match_the_paper() {
        assert_eq!(TABLE2_SPECS.len(), 12);
        let mutag = DatasetSpec::by_name("mutag").unwrap();
        assert_eq!(mutag.num_graphs, 188);
        assert_eq!(mutag.num_classes, 2);
        assert!((mutag.mean_vertices - 17.93).abs() < 1e-9);
        let collab = DatasetSpec::by_name("COLLAB").unwrap();
        assert_eq!(collab.num_graphs, 5000);
        assert!(DatasetSpec::by_name("does-not-exist").is_none());
    }

    #[test]
    fn domains_cover_the_three_areas() {
        let bio = TABLE2_SPECS
            .iter()
            .filter(|s| s.domain == DatasetDomain::Bioinformatics)
            .count();
        let cv = TABLE2_SPECS
            .iter()
            .filter(|s| s.domain == DatasetDomain::ComputerVision)
            .count();
        let sn = TABLE2_SPECS
            .iter()
            .filter(|s| s.domain == DatasetDomain::SocialNetwork)
            .count();
        assert_eq!((bio, cv, sn), (4, 4, 4));
        assert_eq!(DatasetDomain::Bioinformatics.tag(), "Bio");
        assert_eq!(DatasetDomain::ComputerVision.tag(), "CV");
        assert_eq!(DatasetDomain::SocialNetwork.tag(), "SN");
    }

    #[test]
    fn scaling_shrinks_but_keeps_minimums() {
        let red = DatasetSpec::by_name("RED-B").unwrap();
        let small = red.scaled(20, 10);
        assert!(small.num_graphs < red.num_graphs);
        assert!(small.mean_vertices < red.mean_vertices);
        assert!(small.num_graphs >= small.num_classes * 6);
        assert!(small.mean_vertices >= 8.0);
        // Divisor of zero is treated as one.
        let same = red.scaled(0, 0);
        assert_eq!(same.num_graphs, red.num_graphs);
    }

    #[test]
    fn gatorbait_has_30_classes() {
        let g = DatasetSpec::by_name("GatorBait").unwrap();
        assert_eq!(g.num_classes, 30);
        assert_eq!(g.num_graphs, 100);
    }
}
