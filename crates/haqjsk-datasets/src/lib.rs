//! # haqjsk-datasets
//!
//! Synthetic stand-ins for the twelve benchmark datasets of the paper's
//! Table II.
//!
//! The original corpora (TU-Dortmund bioinformatics / social-network datasets
//! and the GatorBait / BAR31 / BSPHERE31 / GEOD31 computer-vision shape
//! datasets) are not redistributable inside this repository, so each one is
//! replaced by a seeded generator that matches its **statistics** (number of
//! graphs, number of classes, mean/max vertex counts, mean edge counts and
//! domain) while giving each class a distinct **structural signature** (block
//! structure, density, hub counts, motif composition). The kernels under
//! study consume only un-attributed adjacency structure, so class-dependent
//! generative parameters provide the same kind of discriminative signal the
//! real datasets do; DESIGN.md documents the substitution.
//!
//! * [`spec`] — the Table II statistics, encoded as data,
//! * [`synth`] — the per-domain class-conditional graph generators,
//! * [`registry`] — name-based lookup plus scaled-down variants for quick
//!   experiments.

pub mod registry;
pub mod spec;
pub mod synth;

pub use registry::{all_dataset_names, generate_by_name, GeneratedDataset};
pub use spec::{DatasetDomain, DatasetSpec, TABLE2_SPECS};
pub use synth::generate_dataset;
