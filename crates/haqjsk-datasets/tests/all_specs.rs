//! Integration tests covering every one of the twelve Table II dataset
//! stand-ins: generation succeeds at reduced scale, class balance holds,
//! sizes respect the specification, and the class-conditional structure is
//! actually learnable by a simple structural statistic.

use haqjsk_datasets::{all_dataset_names, generate_by_name, DatasetSpec, TABLE2_SPECS};
use haqjsk_graph::analysis::{average_degree, corpus_statistics};

#[test]
fn every_table2_dataset_generates_at_reduced_scale() {
    for name in all_dataset_names() {
        let spec = DatasetSpec::by_name(name).expect("spec exists");
        // Aggressive scaling keeps this test fast even for COLLAB / RED-B.
        let dataset = generate_by_name(name, 50, 8, 7).expect("generation succeeds");
        assert!(!dataset.is_empty(), "{name} generated no graphs");
        assert_eq!(
            dataset.num_classes(),
            spec.num_classes,
            "{name} lost classes in generation"
        );
        // Every class is represented with at least a handful of graphs.
        for class in 0..spec.num_classes {
            let count = dataset.classes.iter().filter(|&&c| c == class).count();
            assert!(count >= 3, "{name} class {class} has only {count} graphs");
        }
        // Sizes respect the scaled specification.
        let stats = corpus_statistics(&dataset.graphs);
        assert!(stats.max_vertices <= dataset.spec.max_vertices);
        assert!(stats.mean_vertices >= 4.0);
        // Every graph has at least one edge (kernels need structure).
        assert!(dataset.graphs.iter().all(|g| g.num_edges() > 0), "{name}");
    }
}

#[test]
fn labelled_specs_produce_labels_and_unlabelled_do_not() {
    for spec in TABLE2_SPECS {
        let dataset = generate_by_name(spec.name, 50, 8, 3).expect("generation succeeds");
        let has_labels = dataset.graphs[0].labels().is_some();
        assert_eq!(
            has_labels, spec.has_vertex_labels,
            "{}: label presence should follow the specification",
            spec.name
        );
    }
}

#[test]
fn class_signal_exists_in_a_simple_structural_statistic() {
    // For at least one dataset in each domain, a simple structural statistic
    // of the extreme classes should differ measurably — the signal the
    // kernels are supposed to pick up is not hidden in exotic statistics
    // only. The bioinformatics generator keeps edge counts fixed and varies
    // the ring/triangle composition (probe: clustering coefficient); the CV
    // shape generator varies small-world rewiring (probe: average path
    // length); the SN generator varies density and hubs (probe: degree).
    for (name, statistic) in [
        ("PTC(MR)", "clustering"),
        ("BSPHERE31", "path-length"),
        ("IMDB-B", "degree"),
    ] {
        let dataset = generate_by_name(name, 8, 2, 5).expect("generation succeeds");
        let classes = dataset.num_classes();
        let mean_stat_of = |class: usize| -> f64 {
            let values: Vec<f64> = dataset
                .graphs
                .iter()
                .zip(dataset.classes.iter())
                .filter(|(_, &c)| c == class)
                .map(|(g, _)| match statistic {
                    "clustering" => haqjsk_graph::analysis::clustering_coefficient(g),
                    "path-length" => haqjsk_graph::analysis::average_path_length(g),
                    _ => average_degree(g),
                })
                .collect();
            values.iter().sum::<f64>() / values.len().max(1) as f64
        };
        let first = mean_stat_of(0);
        let last = mean_stat_of(classes - 1);
        assert!(
            (first - last).abs() > 1e-3 || classes == 1,
            "{name}: class-conditional structure too weak ({first} vs {last})"
        );
    }
}

#[test]
fn different_seeds_give_different_but_equally_shaped_corpora() {
    let a = generate_by_name("PPIs", 20, 4, 1).unwrap();
    let b = generate_by_name("PPIs", 20, 4, 2).unwrap();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.classes, b.classes);
    assert_ne!(a.graphs, b.graphs);
}
