//! The model-serving application layer behind the `haqjsk-serve` binary.
//!
//! The engine crate provides the transport ([`Server`], JSON-lines over
//! TCP); this module provides the stateful request handler: fit / transform
//! / kernel-row / append / predict / save / load / stats over a
//! [`HaqjskModel`], with per-graph aligned features memoised in a
//! [`FeatureCache`] and out-of-sample arrivals appended through incremental
//! Gram extension. Living in the library (rather than the binary) lets the
//! loopback smoke test drive the exact production handler.
//!
//! Command table:
//!
//! | command      | request fields                                   | response |
//! |--------------|---------------------------------------------------|----------|
//! | `ping`       | —                                                 | `{"ok":true,"pong":true}` |
//! | `fit`        | `graphs`, opt. `labels`, opt. `variant` (`"A"`/`"D"`), opt. `config`, opt. `workers` | graph/level counts |
//! | `transform`  | `graph`                                           | per-level von Neumann entropies |
//! | `kernel_row` | `graph`                                           | kernel value vs every training graph |
//! | `append`     | `graph`, opt. `label`                             | grows the served set via incremental Gram extension |
//! | `predict`    | `graph`                                           | 1-NN label over the kernel row (requires `labels` at fit) |
//! | `save`       | —                                                 | persisted model text |
//! | `load`       | `model`, opt. `graphs`, opt. `labels`             | restores a persisted model |
//! | `stats`      | —                                                 | engine threads + feature-cache counters |
//! | `metrics`    | —                                                 | the metrics registry as Prometheus text + structured JSON |
//! | `trace_dump` | —                                                 | drains the span tracer's ring buffers as JSON lines |
//! | `add_workers` | `workers`                                        | joins addresses to the running worker pool (per-address errors reported) |
//! | `remove_workers` | `workers`                                     | drains addresses out of the running worker pool |
//!
//! Graphs travel as `{"n":N,"edges":[[u,v],...],"labels":[...]?}`. Config
//! fields (all optional): `hierarchy_levels`, `num_prototypes`, `layer_cap`,
//! `kmeans_max_iterations`, `seed`, `mu`, `small` (bool, default true —
//! start from [`HaqjskConfig::small`]), plus the cache shape of the aligned
//! feature cache: `cache_shards` and `cache_budget_bytes` (LRU byte budget;
//! omit for the `HAQJSK_CACHE_SHARDS` / `HAQJSK_CACHE_BUDGET` environment
//! defaults). A `fit` may also list `workers` (`["host:port", ...]`): the
//! server connects a distributed worker pool ([`crate::dist`]) and runs the
//! model's Gram computations on the `dist` backend — spec-carrying kernel
//! Grams fan out over the pool, everything else executes locally (never
//! failing). `stats` reports the engine's active execution backend; for
//! the feature caches, aggregate *and* per-shard
//! hit/miss/entry/eviction/admission-reject/byte counters (so bounded-
//! memory operation under a budget — and the TinyLFU admission gate — is
//! observable from the wire); and, when a worker pool is installed, a
//! `distributed` object with per-worker tiles
//! dispatched/completed/re-dispatched, bytes shipped, and the
//! dataset-dedup hit rate.
//!
//! Observability: every request is counted and timed into the process-wide
//! metrics registry (`haqjsk_serve_*` families, labelled by sanitised op —
//! that instrumentation lives in the engine's serve transport). `metrics`
//! exposes the whole registry — engine, cache, eigen-batch, distributed and
//! serve families in one scrape — as Prometheus text plus an engine-`Json`
//! snapshot; `stats` keeps its historical field names but its aggregate
//! cache and eigen counters are read back out of the same registry. See
//! `docs/observability.md`.

use crate::core::{
    model_from_string, model_to_string, AlignedGraph, HaqjskConfig, HaqjskModel, HaqjskVariant,
};
use crate::dist::{Coordinator, DistConfig, DistStats};
use crate::engine::serve::{error_response, graph_from_json, Handler, Server};
use crate::engine::{BackendKind, CacheConfig, Engine, FeatureCache, Json, ShardStats};
use crate::graph::Graph;
use crate::kernels::{density_cache_shard_stats, KernelMatrix};
use crate::quantum::von_neumann_entropy;
use std::sync::{Arc, Mutex};

/// Everything tied to the currently fitted model. Replaced wholesale on
/// `fit`/`load` so the feature cache can never outlive its model.
struct ModelState {
    model: HaqjskModel,
    cache: FeatureCache<AlignedGraph>,
    train_graphs: Vec<Graph>,
    labels: Option<Vec<usize>>,
    gram: KernelMatrix,
    /// Execution backend of this model's Gram computations (`Distributed`
    /// when the fit request configured a worker pool).
    backend: Option<BackendKind>,
}

/// Mutable server state shared across connections.
#[derive(Default)]
pub struct ServerState {
    fitted: Option<ModelState>,
}

/// Builds the serving handler and binds it on `addr` (use port `0` for an
/// ephemeral port). Returns the running server.
pub fn spawn_server(addr: &str) -> std::io::Result<Server> {
    register_metric_exporters();
    let state = Arc::new(Mutex::new(ServerState::default()));
    let handler: Arc<dyn Handler> = Arc::new(move |request: &Json| handle(&state, request));
    Server::spawn(addr, handler)
}

/// Registers every layer's registry exporters (feature-cache counters,
/// batched-eigensolver stats, distributed-pool stats) so one registry
/// snapshot covers the whole process. Idempotent; called by
/// [`spawn_server`] and by the `stats`/`metrics` handlers so embedded
/// (non-serving) users of [`handle`] see the same families.
pub fn register_metric_exporters() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        crate::kernels::register_cache_metrics();
        crate::linalg::register_batch_metrics();
        crate::dist::register_dist_metrics();
    });
}

/// Dispatches one request against the shared state.
pub fn handle(state: &Mutex<ServerState>, request: &Json) -> Json {
    let Some(cmd) = request.get("cmd").and_then(Json::as_str) else {
        return error_response("request needs a string field 'cmd'");
    };
    match cmd {
        "ping" => Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
        "fit" => cmd_fit(state, request),
        "transform" => cmd_transform(state, request),
        "kernel_row" => cmd_kernel_row(state, request),
        "append" => cmd_append(state, request),
        "predict" => cmd_predict(state, request),
        "save" => cmd_save(state),
        "load" => cmd_load(state, request),
        "stats" => cmd_stats(state),
        "metrics" => cmd_metrics(),
        "trace_dump" => cmd_trace_dump(),
        "add_workers" => cmd_add_workers(request),
        "remove_workers" => cmd_remove_workers(request),
        other => error_response(&format!("unknown command '{other}'")),
    }
}

fn parse_graphs(request: &Json) -> Result<Vec<Graph>, String> {
    let graphs_json = request
        .get("graphs")
        .and_then(Json::as_array)
        .ok_or("request needs an array field 'graphs'")?;
    graphs_json.iter().map(graph_from_json).collect()
}

fn parse_variant(request: &Json) -> Result<HaqjskVariant, String> {
    match request.get("variant").and_then(Json::as_str) {
        None | Some("A") => Ok(HaqjskVariant::AlignedAdjacency),
        Some("D") => Ok(HaqjskVariant::AlignedDensity),
        Some(other) => Err(format!("unknown variant '{other}' (expected 'A' or 'D')")),
    }
}

fn parse_config(request: &Json) -> Result<HaqjskConfig, String> {
    let Some(config_json) = request.get("config") else {
        return Ok(HaqjskConfig::small());
    };
    let mut config = if config_json.get("small").and_then(Json::as_bool) == Some(false) {
        HaqjskConfig::default()
    } else {
        HaqjskConfig::small()
    };
    let usize_field = |name: &str| config_json.get(name).and_then(Json::as_usize);
    if let Some(v) = usize_field("hierarchy_levels") {
        config.hierarchy_levels = v;
    }
    if let Some(v) = usize_field("num_prototypes") {
        config.num_prototypes = v;
    }
    if let Some(v) = usize_field("layer_cap") {
        config.layer_cap = v;
    }
    if let Some(v) = usize_field("kmeans_max_iterations") {
        config.kmeans_max_iterations = v;
    }
    if let Some(v) = usize_field("seed") {
        config.seed = v as u64;
    }
    if let Some(v) = config_json.get("mu").and_then(Json::as_f64) {
        config.mu = v;
    }
    config.validate()?;
    Ok(config)
}

/// Cache shape for the aligned feature cache: request `config` fields on
/// top of the environment defaults.
fn parse_cache_config(request: &Json) -> CacheConfig {
    let mut config = CacheConfig::from_env();
    if let Some(config_json) = request.get("config") {
        if let Some(shards) = config_json.get("cache_shards").and_then(Json::as_usize) {
            if shards > 0 {
                config.shards = shards;
            }
        }
        if let Some(budget) = config_json
            .get("cache_budget_bytes")
            .and_then(Json::as_usize)
        {
            config.budget_bytes = Some(budget);
        }
    }
    config
}

fn parse_labels(request: &Json, expected: usize) -> Result<Option<Vec<usize>>, String> {
    let Some(labels_json) = request.get("labels") else {
        return Ok(None);
    };
    let arr = labels_json
        .as_array()
        .ok_or("'labels' must be an array of non-negative integers")?;
    if arr.len() != expected {
        return Err(format!(
            "{} labels supplied for {expected} graphs",
            arr.len()
        ));
    }
    arr.iter()
        .map(|l| {
            l.as_usize()
                .ok_or_else(|| "labels must be non-negative integers".to_string())
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn worker_addrs(request: &Json) -> Result<Vec<String>, String> {
    request
        .get("workers")
        .ok_or("request needs an array field 'workers'")?
        .as_array()
        .ok_or("'workers' must be an array of host:port strings")?
        .iter()
        .map(|w| {
            w.as_str()
                .map(str::to_string)
                .ok_or_else(|| "'workers' entries must be strings".to_string())
        })
        .collect()
}

/// Connects and installs a distributed worker pool when the request lists
/// `workers`; returns the backend the model's Grams should run on.
///
/// The pool is installed process-wide (it serves the spec-carrying Grams
/// of the quantum baseline kernels *and* the fitted model, which ships as
/// a content-addressed artifact); computations without a serialisable
/// spec execute locally on the tiled pool, so configuring workers never
/// makes a fit fail. The connect itself is resilient: each unreachable
/// address is retried once with a short backoff, and the fit proceeds
/// degraded (with a loud warning and a `workers_unreachable` count in the
/// response) as long as *one* worker answers — only a fully dark pool is
/// an error.
fn parse_workers(request: &Json) -> Result<Option<BackendKind>, String> {
    if request.get("workers").is_none() {
        return Ok(None);
    };
    let addrs = worker_addrs(request)?;
    let coordinator = Coordinator::connect(&addrs, DistConfig::from_env())
        .map_err(|e| format!("cannot connect worker pool: {e}"))?;
    crate::dist::set_coordinator(Some(Arc::new(coordinator)));
    Ok(Some(BackendKind::Distributed))
}

/// Joins each listed address to the running pool
/// ([`Coordinator::add_worker`]); per-address failures are reported, not
/// fatal, so one dead address cannot block a batch join.
fn cmd_add_workers(request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let coordinator = crate::dist::current_coordinator()
            .ok_or("no worker pool installed (fit with 'workers' first)")?;
        let addrs = worker_addrs(request)?;
        let mut errors = Vec::new();
        let mut added = 0;
        for addr in &addrs {
            match coordinator.add_worker(addr) {
                Ok(()) => added += 1,
                Err(e) => errors.push(Json::Str(format!("{addr}: {e}"))),
            }
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("added", Json::Num(added as f64)),
            ("errors", Json::Arr(errors)),
            ("workers", Json::Num(coordinator.num_workers() as f64)),
            ("epoch", Json::Num(coordinator.epoch() as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

/// Drains each listed address out of the running pool
/// ([`Coordinator::remove_worker`]).
fn cmd_remove_workers(request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let coordinator = crate::dist::current_coordinator()
            .ok_or("no worker pool installed (fit with 'workers' first)")?;
        let addrs = worker_addrs(request)?;
        let mut errors = Vec::new();
        let mut removed = 0;
        for addr in &addrs {
            match coordinator.remove_worker(addr) {
                Ok(()) => removed += 1,
                Err(e) => errors.push(Json::Str(format!("{addr}: {e}"))),
            }
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("removed", Json::Num(removed as f64)),
            ("errors", Json::Arr(errors)),
            ("workers", Json::Num(coordinator.num_workers() as f64)),
            ("epoch", Json::Num(coordinator.epoch() as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_fit(state: &Mutex<ServerState>, request: &Json) -> Json {
    let build = || -> Result<Json, String> {
        let graphs = parse_graphs(request)?;
        let variant = parse_variant(request)?;
        let config = parse_config(request)?;
        let labels = parse_labels(request, graphs.len())?;
        let backend = parse_workers(request)?;
        let model =
            HaqjskModel::fit(&graphs, config, variant).map_err(|e| format!("fit failed: {e:?}"))?;
        let cache = FeatureCache::with_config(parse_cache_config(request));
        let gram = model
            .gram_matrix_cached_on(&graphs, &cache, backend)
            .map_err(|e| format!("gram computation failed: {e:?}"))?;
        let mut pairs = vec![
            ("ok", Json::Bool(true)),
            ("num_graphs", Json::Num(graphs.len() as f64)),
            ("levels", Json::Num(model.hierarchy().num_levels() as f64)),
            ("max_layers", Json::Num(model.max_layers() as f64)),
        ];
        if let Some(backend) = backend {
            pairs.push(("backend", Json::Str(backend.label().to_string())));
            if let Some(coordinator) = crate::dist::current_coordinator() {
                let stats = coordinator.stats();
                let reachable = stats
                    .workers
                    .iter()
                    .filter(|w| w.state == crate::dist::LinkState::Alive)
                    .count();
                let unreachable = stats.workers.len() - reachable;
                pairs.push(("workers", Json::Num(stats.workers.len() as f64)));
                pairs.push(("workers_reachable", Json::Num(reachable as f64)));
                pairs.push(("workers_unreachable", Json::Num(unreachable as f64)));
                pairs.push(("degraded", Json::Bool(unreachable > 0)));
            }
        }
        let response = Json::obj(pairs);
        state.lock().expect("state poisoned").fitted = Some(ModelState {
            model,
            cache,
            train_graphs: graphs,
            labels,
            gram,
            backend,
        });
        Ok(response)
    };
    build().unwrap_or_else(|e| error_response(&e))
}

fn with_fitted<F>(state: &Mutex<ServerState>, f: F) -> Json
where
    F: FnOnce(&mut ModelState) -> Result<Json, String>,
{
    let mut guard = state.lock().expect("state poisoned");
    match guard.fitted.as_mut() {
        None => error_response("no model fitted yet (use 'fit' or 'load')"),
        Some(fitted) => f(fitted).unwrap_or_else(|e| error_response(&e)),
    }
}

fn parse_one_graph(request: &Json) -> Result<Graph, String> {
    let graph_json = request
        .get("graph")
        .ok_or("request needs a field 'graph'")?;
    graph_from_json(graph_json)
}

fn cmd_transform(state: &Mutex<ServerState>, request: &Json) -> Json {
    with_fitted(state, |fitted| {
        let graph = parse_one_graph(request)?;
        let aligned = fitted
            .model
            .transform_all_cached(std::slice::from_ref(&graph), &fitted.cache)
            .map_err(|e| format!("transform failed: {e:?}"))?;
        let entropies: Vec<Json> = aligned[0]
            .densities(fitted.model.variant())
            .iter()
            .map(|rho| Json::Num(von_neumann_entropy(rho)))
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("levels", Json::Num(entropies.len() as f64)),
            ("entropies", Json::Arr(entropies)),
        ]))
    })
}

fn kernel_row(fitted: &ModelState, graph: &Graph) -> Result<Vec<f64>, String> {
    // Evaluate the row directly against the cached training features —
    // O(n) work per query, no cloning and no (n+1)x(n+1) intermediate.
    let train = fitted
        .model
        .transform_all_cached(&fitted.train_graphs, &fitted.cache)
        .map_err(|e| format!("transform failed: {e:?}"))?;
    let query = fitted
        .model
        .transform_all_cached(std::slice::from_ref(graph), &fitted.cache)
        .map_err(|e| format!("transform failed: {e:?}"))?;
    Ok(Engine::global().map(train.len(), |j| fitted.model.kernel(&query[0], &train[j])))
}

fn cmd_kernel_row(state: &Mutex<ServerState>, request: &Json) -> Json {
    with_fitted(state, |fitted| {
        let graph = parse_one_graph(request)?;
        let row = kernel_row(fitted, &graph)?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            (
                "values",
                Json::Arr(row.into_iter().map(Json::Num).collect()),
            ),
        ]))
    })
}

fn cmd_append(state: &Mutex<ServerState>, request: &Json) -> Json {
    with_fitted(state, |fitted| {
        let graph = parse_one_graph(request)?;
        let label = request.get("label").and_then(Json::as_usize);
        if fitted.labels.is_some() && label.is_none() {
            return Err("this model serves labels; 'append' needs a 'label'".to_string());
        }
        let mut all = fitted.train_graphs.clone();
        all.push(graph);
        fitted.gram = fitted
            .model
            .gram_matrix_extended_on(&fitted.gram, &all, &fitted.cache, fitted.backend)
            .map_err(|e| format!("gram extension failed: {e:?}"))?;
        // Commit labels only after the extension succeeded, so a failed
        // append can never desynchronise labels from the graph list.
        fitted.train_graphs = all;
        if let (Some(labels), Some(l)) = (&mut fitted.labels, label) {
            labels.push(l);
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("num_graphs", Json::Num(fitted.train_graphs.len() as f64)),
        ]))
    })
}

fn cmd_predict(state: &Mutex<ServerState>, request: &Json) -> Json {
    with_fitted(state, |fitted| {
        let labels = fitted
            .labels
            .clone()
            .ok_or("model was fitted without labels; 'predict' unavailable")?;
        let graph = parse_one_graph(request)?;
        let row = kernel_row(fitted, &graph)?;
        let (best, value) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .ok_or("training set is empty")?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("label", Json::Num(labels[best] as f64)),
            ("nearest", Json::Num(best as f64)),
            ("kernel_value", Json::Num(*value)),
        ]))
    })
}

fn cmd_save(state: &Mutex<ServerState>) -> Json {
    with_fitted(state, |fitted| {
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("model", Json::Str(model_to_string(&fitted.model))),
        ]))
    })
}

fn cmd_load(state: &Mutex<ServerState>, request: &Json) -> Json {
    let build = || -> Result<Json, String> {
        let text = request
            .get("model")
            .and_then(Json::as_str)
            .ok_or("request needs a string field 'model'")?;
        let model = model_from_string(text).map_err(|e| e.to_string())?;
        let graphs = if request.get("graphs").is_some() {
            parse_graphs(request)?
        } else {
            Vec::new()
        };
        let labels = parse_labels(request, graphs.len())?;
        let cache = FeatureCache::with_config(parse_cache_config(request));
        let gram = model
            .gram_matrix_cached(&graphs, &cache)
            .map_err(|e| format!("gram computation failed: {e:?}"))?;
        let response = Json::obj([
            ("ok", Json::Bool(true)),
            ("num_graphs", Json::Num(graphs.len() as f64)),
            ("levels", Json::Num(model.hierarchy().num_levels() as f64)),
        ]);
        state.lock().expect("state poisoned").fitted = Some(ModelState {
            model,
            cache,
            train_graphs: graphs,
            labels,
            gram,
            backend: None,
        });
        Ok(response)
    };
    build().unwrap_or_else(|e| error_response(&e))
}

/// One shard's counters on the wire.
fn shard_stats_to_json(shard: &ShardStats) -> Json {
    let mut pairs = vec![
        ("entries", Json::Num(shard.entries as f64)),
        ("hits", Json::Num(shard.hits as f64)),
        ("misses", Json::Num(shard.misses as f64)),
        ("evictions", Json::Num(shard.evictions as f64)),
        (
            "admission_rejects",
            Json::Num(shard.admission_rejects as f64),
        ),
        ("resident_bytes", Json::Num(shard.resident_bytes as f64)),
    ];
    if let Some(budget) = shard.budget_bytes {
        pairs.push(("budget_bytes", Json::Num(budget as f64)));
    }
    Json::obj(pairs)
}

/// The distributed-pool state on the wire: per-worker dispatch counters
/// plus dataset-dedup aggregates.
fn dist_stats_to_json(stats: &DistStats) -> Json {
    let workers = stats
        .workers
        .iter()
        .map(|w| {
            Json::obj([
                ("addr", Json::Str(w.addr.clone())),
                ("alive", Json::Bool(w.alive)),
                ("state", Json::Str(w.state.label().to_string())),
                ("tiles_dispatched", Json::Num(w.tiles_dispatched as f64)),
                ("tiles_completed", Json::Num(w.tiles_completed as f64)),
                ("tiles_redispatched", Json::Num(w.tiles_redispatched as f64)),
                ("bytes_shipped", Json::Num(w.bytes_shipped as f64)),
                ("datasets_shipped", Json::Num(w.datasets_shipped as f64)),
                ("deaths", Json::Num(w.deaths as f64)),
                ("reconnects", Json::Num(w.reconnects as f64)),
                ("store_misses", Json::Num(w.store_misses as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("workers", Json::Arr(workers)),
        ("epoch", Json::Num(stats.epoch as f64)),
        ("grams", Json::Num(stats.grams as f64)),
        ("tiles_scheduled", Json::Num(stats.tiles_scheduled as f64)),
        ("tiles_committed", Json::Num(stats.tiles_committed as f64)),
        (
            "artifacts_shipped",
            Json::Num(stats.artifacts_shipped as f64),
        ),
        (
            "local_fallback_grams",
            Json::Num(stats.local_fallback_grams as f64),
        ),
        (
            "local_fallback_tiles",
            Json::Num(stats.local_fallback_tiles as f64),
        ),
        (
            "dataset_keys_total",
            Json::Num(stats.dataset_keys_total as f64),
        ),
        (
            "dataset_keys_shipped",
            Json::Num(stats.dataset_keys_shipped as f64),
        ),
        ("dedup_hit_rate", Json::Num(stats.dedup_hit_rate())),
    ])
}

fn shard_stats_array(shards: &[ShardStats]) -> Json {
    Json::Arr(shards.iter().map(shard_stats_to_json).collect())
}

/// The whole metrics registry in one response: Prometheus text exposition
/// (`prometheus`) plus the engine-`Json` snapshot (`metrics`). One scrape
/// covers the engine, cache, eigen-batch, distributed and serve families.
fn cmd_metrics() -> Json {
    register_metric_exporters();
    let snapshot = crate::obs::registry().snapshot();
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "prometheus",
            Json::Str(crate::obs::render_prometheus(&snapshot)),
        ),
        ("metrics", crate::engine::obs::snapshot_to_json(&snapshot)),
    ])
}

/// Drains the span tracer's per-thread ring buffers: `spans` counts the
/// records, `jsonl` carries them one JSON object per line (empty when
/// tracing is disabled via `HAQJSK_TRACE=0`).
fn cmd_trace_dump() -> Json {
    let (spans, jsonl) = crate::obs::drain_trace_jsonl();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("enabled", Json::Bool(crate::obs::trace_enabled())),
        ("spans", Json::Num(spans as f64)),
        ("jsonl", Json::Str(jsonl)),
    ])
}

fn cmd_stats(state: &Mutex<ServerState>) -> Json {
    // The aggregate cache and eigen-batch counters are read back out of the
    // metrics registry — the same numbers a `metrics` scrape reports — so
    // `stats` and Prometheus can never disagree. Per-shard arrays, the
    // per-model aligned cache and the `distributed` object keep their
    // direct reads (they are not registry families).
    register_metric_exporters();
    let snapshot = crate::obs::registry().snapshot();
    let counter = |name: &str, cache: &str| {
        Json::Num(
            snapshot
                .counter_value(name, &[("cache", cache)])
                .unwrap_or(0) as f64,
        )
    };
    let gauge = |name: &str, cache: &str| {
        Json::Num(
            snapshot
                .gauge_value(name, &[("cache", cache)])
                .unwrap_or(0.0),
        )
    };
    let guard = state.lock().expect("state poisoned");
    let engine = Engine::global();
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("engine_threads", Json::Num(engine.threads() as f64)),
        (
            "engine_backend",
            Json::Str(engine.backend().label().to_string()),
        ),
        (
            "density_cache_hits",
            counter("haqjsk_cache_hits_total", "density"),
        ),
        (
            "density_cache_misses",
            counter("haqjsk_cache_misses_total", "density"),
        ),
        (
            "density_cache_entries",
            gauge("haqjsk_cache_entries", "density"),
        ),
        (
            "density_cache_evictions",
            counter("haqjsk_cache_evictions_total", "density"),
        ),
        (
            "density_cache_admission_rejects",
            counter("haqjsk_cache_admission_rejects_total", "density"),
        ),
        (
            "cache_admission",
            Json::Str(
                crate::kernels::features::density_cache()
                    .admission()
                    .label()
                    .to_string(),
            ),
        ),
        (
            "density_cache_resident_bytes",
            gauge("haqjsk_cache_resident_bytes", "density"),
        ),
        (
            "density_cache_shards",
            shard_stats_array(&density_cache_shard_stats()),
        ),
    ];
    // The spectral/alignment artifact caches introduced with the per-pair
    // fast path (entropies and Umeyama bases hoisted out of the Gram pair
    // loop) are observable alongside the density cache they derive from.
    pairs.push((
        "spectral_cache_hits",
        counter("haqjsk_cache_hits_total", "spectral"),
    ));
    pairs.push((
        "spectral_cache_misses",
        counter("haqjsk_cache_misses_total", "spectral"),
    ));
    pairs.push((
        "spectral_cache_entries",
        gauge("haqjsk_cache_entries", "spectral"),
    ));
    pairs.push((
        "alignment_cache_hits",
        counter("haqjsk_cache_hits_total", "alignment"),
    ));
    pairs.push((
        "alignment_cache_misses",
        counter("haqjsk_cache_misses_total", "alignment"),
    ));
    pairs.push((
        "alignment_cache_entries",
        gauge("haqjsk_cache_entries", "alignment"),
    ));
    pairs.push(("wl_cache_hits", counter("haqjsk_cache_hits_total", "wl")));
    pairs.push((
        "wl_cache_misses",
        counter("haqjsk_cache_misses_total", "wl"),
    ));
    pairs.push(("wl_cache_entries", gauge("haqjsk_cache_entries", "wl")));
    // Batched-eigensolver counters: how much of the mixture eigen work the
    // tile-batched Gram paths actually ran lane-parallel.
    let plain = |name: &str| snapshot.counter_value(name, &[]).unwrap_or(0) as f64;
    let batched_calls = plain("haqjsk_eigen_batched_calls_total");
    let batched_matrices = plain("haqjsk_eigen_batched_matrices_total");
    pairs.push(("eigen_batched_calls", Json::Num(batched_calls)));
    pairs.push(("eigen_batched_matrices", Json::Num(batched_matrices)));
    pairs.push((
        "eigen_scalar_fallbacks",
        Json::Num(plain("haqjsk_eigen_scalar_fallbacks_total")),
    ));
    pairs.push((
        "eigen_mean_batch",
        Json::Num(if batched_calls > 0.0 {
            batched_matrices / batched_calls
        } else {
            0.0
        }),
    ));
    // SIMD dispatch of the batched eigensolver: the active path plus the
    // per-path solve counters (mirrors the `haqjsk_eigen_simd_path` info
    // gauge and `haqjsk_eigen_simd_calls_total` family in the registry).
    pairs.push((
        "eigen_simd_path",
        Json::Str(haqjsk_linalg::active_simd_label().to_string()),
    ));
    pairs.push((
        "eigen_simd_calls",
        Json::obj(haqjsk_linalg::SimdPath::ALL.map(|path| {
            (
                path.label(),
                Json::Num(
                    snapshot
                        .counter_value("haqjsk_eigen_simd_calls_total", &[("path", path.label())])
                        .unwrap_or(0) as f64,
                ),
            )
        })),
    ));
    // Distributed-pool state, when a worker pool is installed: per-worker
    // tiles dispatched / completed / re-dispatched, bytes shipped, and the
    // dataset-dedup hit rate.
    if let Some(coordinator) = crate::dist::current_coordinator() {
        pairs.push(("distributed", dist_stats_to_json(&coordinator.stats())));
    }
    match guard.fitted.as_ref() {
        None => pairs.push(("fitted", Json::Bool(false))),
        Some(fitted) => {
            let stats = fitted.cache.stats();
            pairs.push(("fitted", Json::Bool(true)));
            pairs.push(("num_graphs", Json::Num(fitted.train_graphs.len() as f64)));
            pairs.push(("aligned_cache_hits", Json::Num(stats.hits as f64)));
            pairs.push(("aligned_cache_misses", Json::Num(stats.misses as f64)));
            pairs.push(("aligned_cache_entries", Json::Num(stats.entries as f64)));
            pairs.push(("aligned_cache_evictions", Json::Num(stats.evictions as f64)));
            pairs.push((
                "aligned_cache_admission_rejects",
                Json::Num(stats.admission_rejects as f64),
            ));
            pairs.push((
                "aligned_cache_resident_bytes",
                Json::Num(stats.resident_bytes as f64),
            ));
            if let Some(budget) = fitted.cache.budget_bytes() {
                pairs.push(("aligned_cache_budget_bytes", Json::Num(budget as f64)));
            }
            pairs.push((
                "aligned_cache_shards",
                shard_stats_array(&fitted.cache.shard_stats()),
            ));
        }
    }
    Json::obj(pairs)
}
