//! The model-serving application layer behind the `haqjsk-serve` binary.
//!
//! The engine crate provides the transport ([`Server`], JSON-lines over
//! TCP, with connection caps, bounded frames, slow-client timeouts and
//! panic isolation — see `haqjsk-engine::serve`); this module provides the
//! stateful request handler: fit / transform / kernel-row / append /
//! predict / save / load / stats over a [`HaqjskModel`], with per-graph
//! aligned features memoised in a [`FeatureCache`] and out-of-sample
//! arrivals appended through incremental Gram extension. Living in the
//! library (rather than the binary) lets the loopback smoke test drive the
//! exact production handler.
//!
//! Command table (see `docs/serving.md` for the full protocol reference):
//!
//! | command      | request fields                                   | response |
//! |--------------|---------------------------------------------------|----------|
//! | `ping`       | —                                                 | `{"ok":true,"pong":true}` |
//! | `fit`        | `graphs`, opt. `labels`, opt. `variant` (`"A"`/`"D"`), opt. `config`, opt. `workers` | graph/level counts |
//! | `transform`  | `graph`                                           | per-level von Neumann entropies |
//! | `kernel_row` | `graph`                                           | kernel value vs every training graph |
//! | `append`     | `graph`, opt. `label`                             | grows the served set via incremental Gram extension |
//! | `predict`    | `graph`                                           | 1-NN label over the kernel row (requires `labels` at fit) |
//! | `save`       | —                                                 | persisted model text |
//! | `load`       | `model`, opt. `graphs`, opt. `labels`             | restores a persisted model |
//! | `save_file`  | `path`                                            | atomically persists the model to disk with a checksum footer |
//! | `load_file`  | `path`, opt. `graphs`, opt. `labels`              | restores a checksum-verified model from disk |
//! | `stats`      | —                                                 | engine threads + cache counters + overload state |
//! | `metrics`    | —                                                 | the metrics registry as Prometheus text + structured JSON |
//! | `trace_dump` | —                                                 | drains the span tracer's ring buffers as JSON lines |
//! | `add_workers` | `workers`                                        | joins addresses to the running worker pool (per-address errors reported) |
//! | `remove_workers` | `workers`                                     | drains addresses out of the running worker pool |
//! | `drain`      | —                                                 | begins a graceful drain (stop accepting, finish in-flight) |
//!
//! Graphs travel as `{"n":N,"edges":[[u,v],...],"labels":[...]?}`. Config
//! fields (all optional): `hierarchy_levels`, `num_prototypes`, `layer_cap`,
//! `kmeans_max_iterations`, `seed`, `mu`, `small` (bool, default true —
//! start from [`HaqjskConfig::small`]), plus the cache shape of the aligned
//! feature cache: `cache_shards` and `cache_budget_bytes` (LRU byte budget;
//! omit for the `HAQJSK_CACHE_SHARDS` / `HAQJSK_CACHE_BUDGET` environment
//! defaults). A `fit` may also list `workers` (`["host:port", ...]`): the
//! server connects a distributed worker pool ([`crate::dist`]) and runs the
//! model's Gram computations on the `dist` backend — spec-carrying kernel
//! Grams fan out over the pool, everything else executes locally (never
//! failing). `stats` reports the engine's active execution backend; for
//! the feature caches, aggregate *and* per-shard
//! hit/miss/entry/eviction/admission-reject/byte counters (so bounded-
//! memory operation under a budget — and the TinyLFU admission gate — is
//! observable from the wire); and, when a worker pool is installed, a
//! `distributed` object with per-worker tiles
//! dispatched/completed/re-dispatched, bytes shipped, and the
//! dataset-dedup hit rate.
//!
//! ## Overload safety
//!
//! Heavy operations (`fit`, `transform`, `kernel_row`, `append`,
//! `predict`, `load`, `load_file`) pass **admission control** before doing
//! any work: when the heavy-request load (requests in flight in heavy
//! handlers plus the engine pool's queue depth, normalised by thread
//! count) reaches `HAQJSK_SERVE_MAX_INFLIGHT_HEAVY`, the request is shed
//! immediately with `{"ok":false,"error":"overloaded: ...",`
//! `"rejected":"overloaded"}` — cheap operations (`ping`, `stats`,
//! `metrics`) keep answering throughout. Every request may carry a
//! `deadline_ms` budget (defaulted by `HAQJSK_SERVE_DEADLINE_MS`); a heavy
//! request that exceeds it reports
//! `{"ok":false,"rejected":"deadline_exceeded",...}` honestly at its next
//! checkpoint instead of finishing arbitrarily late. Sheds and deadline
//! trips are metered per operation (`haqjsk_serve_rejected_total`,
//! `haqjsk_serve_deadline_exceeded_total`).
//!
//! Observability: every request is counted and timed into the process-wide
//! metrics registry (`haqjsk_serve_*` families, labelled by sanitised op —
//! that instrumentation lives in the engine's serve transport). `metrics`
//! exposes the whole registry — engine, cache, eigen-batch, distributed and
//! serve families in one scrape — as Prometheus text plus an engine-`Json`
//! snapshot; `stats` keeps its historical field names but its aggregate
//! cache and eigen counters are read back out of the same registry. See
//! `docs/observability.md`.

use crate::core::{
    load_model_file, model_from_string, model_to_string, save_model_file, AlignedGraph,
    HaqjskConfig, HaqjskModel, HaqjskVariant,
};
use crate::dist::{Coordinator, DistConfig, DistStats};
use crate::engine::serve::{
    error_response, graph_from_json, Handler, ServeConfig, ServeControl, Server,
};
use crate::engine::{
    BackendKind, CacheConfig, Engine, FeatureCache, HttpResponder, HttpResponse, HttpServer, Json,
    ShardStats,
};
use crate::graph::Graph;
use crate::kernels::{density_cache_shard_stats, KernelMatrix};
use crate::quantum::von_neumann_entropy;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Environment variable giving every request a default deadline budget in
/// milliseconds (`0` or unset: no default; requests may still send their
/// own `deadline_ms`).
pub const DEADLINE_ENV_VAR: &str = "HAQJSK_SERVE_DEADLINE_MS";
/// Environment variable setting the heavy-request admission high-water
/// mark (`0` sheds every heavy request — useful for tests and for
/// quiescing a server without stopping it).
pub const MAX_INFLIGHT_HEAVY_ENV_VAR: &str = "HAQJSK_SERVE_MAX_INFLIGHT_HEAVY";
/// Environment variable giving the HTTP observability sidecar's bind
/// address (`host:port`); the `haqjsk-serve --http-addr` flag overrides
/// it. Unset or empty: no HTTP listener.
pub const HTTP_ADDR_ENV_VAR: &str = "HAQJSK_HTTP_ADDR";

/// Application-level serving limits on top of the transport's
/// [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Transport limits (connection cap, frame cap, I/O timeout).
    pub serve: ServeConfig,
    /// Deadline applied to requests that do not send their own
    /// `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Admission high-water mark: heavy requests are shed while the heavy
    /// load (in-flight heavy handlers + normalised pool queue depth) is at
    /// or above this. `0` sheds everything heavy.
    pub max_inflight_heavy: usize,
}

impl Default for ServingConfig {
    fn default() -> ServingConfig {
        ServingConfig {
            serve: ServeConfig::default(),
            default_deadline: None,
            max_inflight_heavy: 32,
        }
    }
}

impl ServingConfig {
    /// The defaults with `HAQJSK_SERVE_*` environment overrides applied
    /// (both the transport's and the application's). Unparseable values
    /// are hard errors.
    pub fn from_env() -> Result<ServingConfig, String> {
        let mut config = ServingConfig {
            serve: ServeConfig::from_env()?,
            ..ServingConfig::default()
        };
        if let Some(ms) = parse_env_usize(DEADLINE_ENV_VAR)? {
            config.default_deadline = (ms > 0).then(|| Duration::from_millis(ms as u64));
        }
        if let Some(v) = parse_env_usize(MAX_INFLIGHT_HEAVY_ENV_VAR)? {
            config.max_inflight_heavy = v;
        }
        Ok(config)
    }
}

fn parse_env_usize(name: &str) -> Result<Option<usize>, String> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(raw) => raw
            .trim()
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("invalid {name}='{raw}': {e}")),
    }
}

/// Everything tied to the currently fitted model. Replaced wholesale on
/// `fit`/`load` so the feature cache can never outlive its model.
struct ModelState {
    model: HaqjskModel,
    cache: FeatureCache<AlignedGraph>,
    train_graphs: Vec<Graph>,
    labels: Option<Vec<usize>>,
    gram: KernelMatrix,
    /// Execution backend of this model's Gram computations (`Distributed`
    /// when the fit request configured a worker pool).
    backend: Option<BackendKind>,
}

/// Mutable server state shared across connections.
#[derive(Default)]
pub struct ServerState {
    fitted: Option<ModelState>,
}

struct ServingInner {
    state: Mutex<ServerState>,
    config: ServingConfig,
    /// Requests currently inside a heavy handler (including those queued
    /// on the state mutex) — the application half of the admission load.
    heavy_inflight: AtomicUsize,
    /// Lifecycle handle of the server this handler is mounted on; set by
    /// [`Serving::spawn`], absent for embedded (serverless) use.
    control: OnceLock<ServeControl>,
}

/// The serving application: configuration, model state and overload
/// bookkeeping behind a cheap `Clone`. Construct one, then either mount it
/// on a TCP server with [`Serving::spawn`] or drive [`Serving::handle`]
/// directly (tests, embedding).
#[derive(Clone)]
pub struct Serving {
    inner: Arc<ServingInner>,
}

/// Builds the serving handler with environment-derived limits and binds it
/// on `addr` (use port `0` for an ephemeral port). Returns the running
/// server. The historical entry point; [`Serving::spawn`] is the
/// configurable one.
pub fn spawn_server(addr: &str) -> std::io::Result<Server> {
    let config = ServingConfig::from_env()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    Serving::new(config).spawn(addr)
}

/// Registers every layer's registry exporters (feature-cache counters,
/// batched-eigensolver stats, distributed-pool stats) so one registry
/// snapshot covers the whole process. Idempotent; called by
/// [`Serving::spawn`] and by the `stats`/`metrics` handlers so embedded
/// users of [`Serving::handle`] see the same families.
pub fn register_metric_exporters() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        crate::kernels::register_cache_metrics();
        crate::linalg::register_batch_metrics();
        crate::dist::register_dist_metrics();
        // Info-style build-identity gauge: constant 1, the labels carry the
        // interesting values (crate version, dispatched SIMD path, default
        // Gram backend). One scrape identifies what is running where.
        crate::obs::registry()
            .gauge(
                "haqjsk_build_info",
                "Build identity (info-style: constant 1; labels carry the \
                 crate version, SIMD dispatch path and default Gram backend).",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("simd_path", crate::linalg::active_simd_label()),
                    ("backend", Engine::global().backend().label()),
                ],
            )
            .set(1.0);
    });
}

/// How a request failed: an ordinary error, an admission shed, or a
/// deadline trip — each rendered as a distinct envelope.
enum Fail {
    Error(String),
    Deadline(String),
}

impl From<String> for Fail {
    fn from(message: String) -> Fail {
        Fail::Error(message)
    }
}

impl From<&str> for Fail {
    fn from(message: &str) -> Fail {
        Fail::Error(message.to_string())
    }
}

/// A request's time budget, checked at the start of every expensive stage
/// ("checkpoints"): work already begun is never interrupted mid-stage, but
/// the response is an honest `deadline_exceeded` instead of arbitrarily
/// late data.
struct RequestDeadline {
    start: Instant,
    limit: Option<Duration>,
}

impl RequestDeadline {
    fn from_request(request: &Json, default: Option<Duration>) -> Result<RequestDeadline, String> {
        let limit = match request.get("deadline_ms") {
            None => default,
            Some(v) => {
                let ms = v
                    .as_usize()
                    .ok_or("'deadline_ms' must be a non-negative integer")?;
                Some(Duration::from_millis(ms as u64))
            }
        };
        Ok(RequestDeadline {
            start: Instant::now(),
            limit,
        })
    }

    /// Fails with a deadline trip when the budget is spent; `checkpoint`
    /// names the stage about to start, for the error message.
    fn check(&self, checkpoint: &str) -> Result<(), Fail> {
        let Some(limit) = self.limit else {
            return Ok(());
        };
        let elapsed = self.start.elapsed();
        if elapsed >= limit {
            return Err(Fail::Deadline(format!(
                "deadline exceeded: {} ms elapsed of a {} ms budget (at '{checkpoint}')",
                elapsed.as_millis(),
                limit.as_millis()
            )));
        }
        Ok(())
    }
}

/// RAII marker of one request inside a heavy handler.
struct HeavyGuard {
    inner: Arc<ServingInner>,
}

impl HeavyGuard {
    fn enter(inner: &Arc<ServingInner>) -> HeavyGuard {
        inner.heavy_inflight.fetch_add(1, Ordering::AcqRel);
        HeavyGuard {
            inner: Arc::clone(inner),
        }
    }
}

impl Drop for HeavyGuard {
    fn drop(&mut self) {
        self.inner.heavy_inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Serving {
    /// A fresh serving application with the given limits and no fitted
    /// model.
    pub fn new(config: ServingConfig) -> Serving {
        Serving {
            inner: Arc::new(ServingInner {
                state: Mutex::new(ServerState::default()),
                config,
                heavy_inflight: AtomicUsize::new(0),
                control: OnceLock::new(),
            }),
        }
    }

    /// Mounts this application on a TCP server bound at `addr` and records
    /// the server's lifecycle handle so the `drain` operation works.
    pub fn spawn(&self, addr: &str) -> std::io::Result<Server> {
        register_metric_exporters();
        let serving = self.clone();
        let handler: Arc<dyn Handler> = Arc::new(move |request: &Json| serving.handle(request));
        let server = Server::spawn_with_config(addr, handler, self.inner.config.serve.clone())?;
        let _ = self.inner.control.set(server.control());
        Ok(server)
    }

    /// Mounts the HTTP observability sidecar on `addr` (use port `0` for an
    /// ephemeral port): a GET-only HTTP/1.1 listener serving `/metrics`
    /// (Prometheus text), `/healthz` (200 while serving, 503 while draining
    /// or overloaded), `/traces` (drained span records as JSON lines behind
    /// a meta line) and `/debug/requests` (the flight recorder). The
    /// listener keeps answering during a drain so `/healthz` can report it.
    pub fn spawn_http(&self, addr: &str) -> std::io::Result<HttpServer> {
        register_metric_exporters();
        let serving = self.clone();
        let responder: Arc<HttpResponder> = Arc::new(move |path: &str| serving.http_respond(path));
        HttpServer::spawn(addr, responder)
    }

    /// Routes one HTTP GET path to its response. Public so tests can
    /// exercise the routing without a live listener.
    pub fn http_respond(&self, path: &str) -> HttpResponse {
        match path {
            "/metrics" => {
                register_metric_exporters();
                let snapshot = crate::obs::registry().snapshot();
                HttpResponse {
                    status: 200,
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    body: crate::obs::render_prometheus(&snapshot),
                    route: "/metrics",
                }
            }
            "/healthz" => {
                if self.drain_requested() {
                    HttpResponse::text(503, "/healthz", "draining\n")
                } else if self.heavy_load() >= self.inner.config.max_inflight_heavy {
                    HttpResponse::text(503, "/healthz", "overloaded\n")
                } else {
                    HttpResponse::text(200, "/healthz", "ok\n")
                }
            }
            "/traces" => {
                let dump = crate::obs::drain_trace_jsonl();
                let meta = format!(
                    "{{\"kind\":\"meta\",\"enabled\":{},\"spans\":{},\"dropped\":{}}}\n",
                    crate::obs::trace_enabled(),
                    dump.spans,
                    dump.dropped
                );
                HttpResponse {
                    status: 200,
                    content_type: "application/jsonl",
                    body: format!("{meta}{}", dump.jsonl),
                    route: "/traces",
                }
            }
            "/debug/requests" => HttpResponse {
                status: 200,
                content_type: "application/jsonl",
                body: crate::obs::flight_jsonl(),
                route: "/debug/requests",
            },
            _ => HttpResponse::text(404, "other", "not found\n"),
        }
    }

    /// Whether a graceful drain has been requested (by the `drain`
    /// operation or a [`ServeControl`]); the process hosting the server
    /// polls this — alongside its signal flag — to know when to call
    /// [`Server::drain`] and exit.
    pub fn drain_requested(&self) -> bool {
        self.inner
            .control
            .get()
            .is_some_and(ServeControl::is_draining)
    }

    /// The admission-control load measure: heavy requests in flight plus
    /// the engine pool's queue depth normalised by its thread count (a
    /// deep compute queue counts like additional waiting requests).
    fn heavy_load(&self) -> usize {
        let depth = crate::engine::obs::pool_queue_depth_gauge().value();
        let depth = if depth.is_finite() && depth > 0.0 {
            depth as usize
        } else {
            0
        };
        let threads = Engine::global().threads().max(1);
        let queued = depth.div_ceil(threads);
        self.inner.heavy_inflight.load(Ordering::Acquire) + queued
    }

    /// Runs one heavy command behind admission control and a deadline:
    /// sheds before any work when the load is at the high-water mark, and
    /// renders deadline trips as their distinct envelope.
    fn heavy<F>(&self, op: &str, request: &Json, f: F) -> Json
    where
        F: FnOnce(&RequestDeadline) -> Result<Json, Fail>,
    {
        let load = self.heavy_load();
        let cap = self.inner.config.max_inflight_heavy;
        if load >= cap {
            crate::engine::obs::serve_rejected_counter(op).inc();
            return Json::obj([
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::Str(format!(
                        "overloaded: heavy load {load} at/above cap {cap}; retry later"
                    )),
                ),
                ("rejected", Json::Str("overloaded".to_string())),
            ]);
        }
        let _guard = HeavyGuard::enter(&self.inner);
        let deadline =
            match RequestDeadline::from_request(request, self.inner.config.default_deadline) {
                Ok(deadline) => deadline,
                Err(e) => return error_response(&e),
            };
        match f(&deadline) {
            Ok(response) => response,
            Err(Fail::Error(e)) => error_response(&e),
            Err(Fail::Deadline(e)) => {
                crate::engine::obs::serve_deadline_exceeded_counter(op).inc();
                Json::obj([
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(e)),
                    ("rejected", Json::Str("deadline_exceeded".to_string())),
                ])
            }
        }
    }

    /// Dispatches one request. Heavy operations pass admission control and
    /// observe deadlines; cheap ones answer unconditionally so liveness
    /// and observability survive overload.
    pub fn handle(&self, request: &Json) -> Json {
        let Some(cmd) = request.get("cmd").and_then(Json::as_str) else {
            return error_response("request needs a string field 'cmd'");
        };
        let state = &self.inner.state;
        match cmd {
            "ping" => Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
            "fit" => self.heavy("fit", request, |d| cmd_fit(state, request, d)),
            "transform" => self.heavy("transform", request, |d| cmd_transform(state, request, d)),
            "kernel_row" => {
                self.heavy("kernel_row", request, |d| cmd_kernel_row(state, request, d))
            }
            "append" => self.heavy("append", request, |d| cmd_append(state, request, d)),
            "predict" => self.heavy("predict", request, |d| cmd_predict(state, request, d)),
            "save" => cmd_save(state),
            "load" => self.heavy("load", request, |d| cmd_load(state, request, d)),
            "save_file" => cmd_save_file(state, request),
            "load_file" => self.heavy("load_file", request, |d| cmd_load_file(state, request, d)),
            "stats" => cmd_stats(self),
            "metrics" => cmd_metrics(),
            "trace_dump" => cmd_trace_dump(),
            "add_workers" => cmd_add_workers(request),
            "remove_workers" => cmd_remove_workers(request),
            "drain" => self.cmd_drain(),
            other => error_response(&format!("unknown command '{other}'")),
        }
    }

    /// Begins a graceful drain of the server this handler is mounted on:
    /// the accept loop stops, idle connections close, in-flight requests
    /// (including this one) are answered. The hosting process observes
    /// [`Serving::drain_requested`] and completes the drain.
    fn cmd_drain(&self) -> Json {
        let Some(control) = self.inner.control.get() else {
            return error_response("drain unavailable: handler is not mounted on a server");
        };
        control.begin_drain();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("draining", Json::Bool(true)),
            (
                "active_connections",
                Json::Num(control.active_connections() as f64),
            ),
        ])
    }
}

fn parse_graphs(request: &Json) -> Result<Vec<Graph>, String> {
    let graphs_json = request
        .get("graphs")
        .and_then(Json::as_array)
        .ok_or("request needs an array field 'graphs'")?;
    graphs_json.iter().map(graph_from_json).collect()
}

fn parse_variant(request: &Json) -> Result<HaqjskVariant, String> {
    match request.get("variant").and_then(Json::as_str) {
        None | Some("A") => Ok(HaqjskVariant::AlignedAdjacency),
        Some("D") => Ok(HaqjskVariant::AlignedDensity),
        Some(other) => Err(format!("unknown variant '{other}' (expected 'A' or 'D')")),
    }
}

fn parse_config(request: &Json) -> Result<HaqjskConfig, String> {
    let Some(config_json) = request.get("config") else {
        return Ok(HaqjskConfig::small());
    };
    let mut config = if config_json.get("small").and_then(Json::as_bool) == Some(false) {
        HaqjskConfig::default()
    } else {
        HaqjskConfig::small()
    };
    let usize_field = |name: &str| config_json.get(name).and_then(Json::as_usize);
    if let Some(v) = usize_field("hierarchy_levels") {
        config.hierarchy_levels = v;
    }
    if let Some(v) = usize_field("num_prototypes") {
        config.num_prototypes = v;
    }
    if let Some(v) = usize_field("layer_cap") {
        config.layer_cap = v;
    }
    if let Some(v) = usize_field("kmeans_max_iterations") {
        config.kmeans_max_iterations = v;
    }
    if let Some(v) = usize_field("seed") {
        config.seed = v as u64;
    }
    if let Some(v) = config_json.get("mu").and_then(Json::as_f64) {
        config.mu = v;
    }
    config.validate()?;
    Ok(config)
}

/// Cache shape for the aligned feature cache: request `config` fields on
/// top of the environment defaults.
fn parse_cache_config(request: &Json) -> CacheConfig {
    let mut config = CacheConfig::from_env();
    if let Some(config_json) = request.get("config") {
        if let Some(shards) = config_json.get("cache_shards").and_then(Json::as_usize) {
            if shards > 0 {
                config.shards = shards;
            }
        }
        if let Some(budget) = config_json
            .get("cache_budget_bytes")
            .and_then(Json::as_usize)
        {
            config.budget_bytes = Some(budget);
        }
    }
    config
}

fn parse_labels(request: &Json, expected: usize) -> Result<Option<Vec<usize>>, String> {
    let Some(labels_json) = request.get("labels") else {
        return Ok(None);
    };
    let arr = labels_json
        .as_array()
        .ok_or("'labels' must be an array of non-negative integers")?;
    if arr.len() != expected {
        return Err(format!(
            "{} labels supplied for {expected} graphs",
            arr.len()
        ));
    }
    arr.iter()
        .map(|l| {
            l.as_usize()
                .ok_or_else(|| "labels must be non-negative integers".to_string())
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn worker_addrs(request: &Json) -> Result<Vec<String>, String> {
    request
        .get("workers")
        .ok_or("request needs an array field 'workers'")?
        .as_array()
        .ok_or("'workers' must be an array of host:port strings")?
        .iter()
        .map(|w| {
            w.as_str()
                .map(str::to_string)
                .ok_or_else(|| "'workers' entries must be strings".to_string())
        })
        .collect()
}

/// Connects and installs a distributed worker pool when the request lists
/// `workers`; returns the backend the model's Grams should run on.
///
/// The pool is installed process-wide (it serves the spec-carrying Grams
/// of the quantum baseline kernels *and* the fitted model, which ships as
/// a content-addressed artifact); computations without a serialisable
/// spec execute locally on the tiled pool, so configuring workers never
/// makes a fit fail. The connect itself is resilient: each unreachable
/// address is retried once with a short backoff, and the fit proceeds
/// degraded (with a loud warning and a `workers_unreachable` count in the
/// response) as long as *one* worker answers — only a fully dark pool is
/// an error.
fn parse_workers(request: &Json) -> Result<Option<BackendKind>, String> {
    if request.get("workers").is_none() {
        return Ok(None);
    };
    let addrs = worker_addrs(request)?;
    let coordinator = Coordinator::connect(&addrs, DistConfig::from_env())
        .map_err(|e| format!("cannot connect worker pool: {e}"))?;
    crate::dist::set_coordinator(Some(Arc::new(coordinator)));
    Ok(Some(BackendKind::Distributed))
}

/// Joins each listed address to the running pool
/// ([`Coordinator::add_worker`]); per-address failures are reported, not
/// fatal, so one dead address cannot block a batch join.
fn cmd_add_workers(request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let coordinator = crate::dist::current_coordinator()
            .ok_or("no worker pool installed (fit with 'workers' first)")?;
        let addrs = worker_addrs(request)?;
        let mut errors = Vec::new();
        let mut added = 0;
        for addr in &addrs {
            match coordinator.add_worker(addr) {
                Ok(()) => added += 1,
                Err(e) => errors.push(Json::Str(format!("{addr}: {e}"))),
            }
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("added", Json::Num(added as f64)),
            ("errors", Json::Arr(errors)),
            ("workers", Json::Num(coordinator.num_workers() as f64)),
            ("epoch", Json::Num(coordinator.epoch() as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

/// Drains each listed address out of the running pool
/// ([`Coordinator::remove_worker`]).
fn cmd_remove_workers(request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let coordinator = crate::dist::current_coordinator()
            .ok_or("no worker pool installed (fit with 'workers' first)")?;
        let addrs = worker_addrs(request)?;
        let mut errors = Vec::new();
        let mut removed = 0;
        for addr in &addrs {
            match coordinator.remove_worker(addr) {
                Ok(()) => removed += 1,
                Err(e) => errors.push(Json::Str(format!("{addr}: {e}"))),
            }
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("removed", Json::Num(removed as f64)),
            ("errors", Json::Arr(errors)),
            ("workers", Json::Num(coordinator.num_workers() as f64)),
            ("epoch", Json::Num(coordinator.epoch() as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_fit(
    state: &Mutex<ServerState>,
    request: &Json,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    let graphs = parse_graphs(request)?;
    let variant = parse_variant(request)?;
    let config = parse_config(request)?;
    let labels = parse_labels(request, graphs.len())?;
    let backend = parse_workers(request)?;
    deadline.check("fit: prototype hierarchy")?;
    let model =
        HaqjskModel::fit(&graphs, config, variant).map_err(|e| format!("fit failed: {e:?}"))?;
    deadline.check("fit: gram computation")?;
    let cache = FeatureCache::with_config(parse_cache_config(request));
    let gram = model
        .gram_matrix_cached_on(&graphs, &cache, backend)
        .map_err(|e| format!("gram computation failed: {e:?}"))?;
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("num_graphs", Json::Num(graphs.len() as f64)),
        ("levels", Json::Num(model.hierarchy().num_levels() as f64)),
        ("max_layers", Json::Num(model.max_layers() as f64)),
    ];
    if let Some(backend) = backend {
        pairs.push(("backend", Json::Str(backend.label().to_string())));
        if let Some(coordinator) = crate::dist::current_coordinator() {
            let stats = coordinator.stats();
            let reachable = stats
                .workers
                .iter()
                .filter(|w| w.state == crate::dist::LinkState::Alive)
                .count();
            let unreachable = stats.workers.len() - reachable;
            pairs.push(("workers", Json::Num(stats.workers.len() as f64)));
            pairs.push(("workers_reachable", Json::Num(reachable as f64)));
            pairs.push(("workers_unreachable", Json::Num(unreachable as f64)));
            pairs.push(("degraded", Json::Bool(unreachable > 0)));
        }
    }
    let response = Json::obj(pairs);
    state.lock().expect("state poisoned").fitted = Some(ModelState {
        model,
        cache,
        train_graphs: graphs,
        labels,
        gram,
        backend,
    });
    Ok(response)
}

fn with_fitted<F>(state: &Mutex<ServerState>, f: F) -> Result<Json, Fail>
where
    F: FnOnce(&mut ModelState) -> Result<Json, Fail>,
{
    let mut guard = state.lock().expect("state poisoned");
    match guard.fitted.as_mut() {
        None => Err(Fail::Error(
            "no model fitted yet (use 'fit' or 'load')".to_string(),
        )),
        Some(fitted) => f(fitted),
    }
}

fn parse_one_graph(request: &Json) -> Result<Graph, String> {
    let graph_json = request
        .get("graph")
        .ok_or("request needs a field 'graph'")?;
    graph_from_json(graph_json)
}

fn cmd_transform(
    state: &Mutex<ServerState>,
    request: &Json,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    with_fitted(state, |fitted| {
        let graph = parse_one_graph(request)?;
        deadline.check("transform")?;
        let aligned = fitted
            .model
            .transform_all_cached(std::slice::from_ref(&graph), &fitted.cache)
            .map_err(|e| format!("transform failed: {e:?}"))?;
        let entropies: Vec<Json> = aligned[0]
            .densities(fitted.model.variant())
            .iter()
            .map(|rho| Json::Num(von_neumann_entropy(rho)))
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("levels", Json::Num(entropies.len() as f64)),
            ("entropies", Json::Arr(entropies)),
        ]))
    })
}

fn kernel_row(
    fitted: &ModelState,
    graph: &Graph,
    deadline: &RequestDeadline,
) -> Result<Vec<f64>, Fail> {
    // Evaluate the row directly against the cached training features —
    // O(n) work per query, no cloning and no (n+1)x(n+1) intermediate.
    deadline.check("kernel_row: training features")?;
    let train = fitted
        .model
        .transform_all_cached(&fitted.train_graphs, &fitted.cache)
        .map_err(|e| format!("transform failed: {e:?}"))?;
    deadline.check("kernel_row: query features")?;
    let query = fitted
        .model
        .transform_all_cached(std::slice::from_ref(graph), &fitted.cache)
        .map_err(|e| format!("transform failed: {e:?}"))?;
    deadline.check("kernel_row: row evaluation")?;
    Ok(Engine::global().map(train.len(), |j| fitted.model.kernel(&query[0], &train[j])))
}

fn cmd_kernel_row(
    state: &Mutex<ServerState>,
    request: &Json,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    with_fitted(state, |fitted| {
        let graph = parse_one_graph(request)?;
        let row = kernel_row(fitted, &graph, deadline)?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            (
                "values",
                Json::Arr(row.into_iter().map(Json::Num).collect()),
            ),
        ]))
    })
}

fn cmd_append(
    state: &Mutex<ServerState>,
    request: &Json,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    with_fitted(state, |fitted| {
        let graph = parse_one_graph(request)?;
        let label = request.get("label").and_then(Json::as_usize);
        if fitted.labels.is_some() && label.is_none() {
            return Err("this model serves labels; 'append' needs a 'label'".into());
        }
        // The only checkpoint is *before* the extension: once the Gram is
        // extended the append has happened, and reporting a deadline trip
        // over committed state would lie about the server's contents.
        deadline.check("append: gram extension")?;
        let mut all = fitted.train_graphs.clone();
        all.push(graph);
        fitted.gram = fitted
            .model
            .gram_matrix_extended_on(&fitted.gram, &all, &fitted.cache, fitted.backend)
            .map_err(|e| format!("gram extension failed: {e:?}"))?;
        // Commit labels only after the extension succeeded, so a failed
        // append can never desynchronise labels from the graph list.
        fitted.train_graphs = all;
        if let (Some(labels), Some(l)) = (&mut fitted.labels, label) {
            labels.push(l);
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("num_graphs", Json::Num(fitted.train_graphs.len() as f64)),
        ]))
    })
}

fn cmd_predict(
    state: &Mutex<ServerState>,
    request: &Json,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    with_fitted(state, |fitted| {
        let labels = fitted
            .labels
            .clone()
            .ok_or("model was fitted without labels; 'predict' unavailable")?;
        let graph = parse_one_graph(request)?;
        let row = kernel_row(fitted, &graph, deadline)?;
        let (best, value) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .ok_or("training set is empty")?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("label", Json::Num(labels[best] as f64)),
            ("nearest", Json::Num(best as f64)),
            ("kernel_value", Json::Num(*value)),
        ]))
    })
}

fn cmd_save(state: &Mutex<ServerState>) -> Json {
    with_fitted(state, |fitted| {
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("model", Json::Str(model_to_string(&fitted.model))),
        ]))
    })
    .unwrap_or_else(fail_to_response)
}

fn fail_to_response(fail: Fail) -> Json {
    match fail {
        Fail::Error(e) | Fail::Deadline(e) => error_response(&e),
    }
}

/// Atomically persists the fitted model to `path` on the server's
/// filesystem ([`save_model_file`]: tmp write, fsync, rename, checksum
/// footer), reporting the artifact id the bytes hash to.
fn cmd_save_file(state: &Mutex<ServerState>, request: &Json) -> Json {
    with_fitted(state, |fitted| {
        let path = request
            .get("path")
            .and_then(Json::as_str)
            .ok_or("request needs a string field 'path'")?;
        save_model_file(&fitted.model, Path::new(path))
            .map_err(|e| format!("cannot save model to {path}: {e}"))?;
        let text = model_to_string(&fitted.model);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("path", Json::Str(path.to_string())),
            (
                "artifact_id",
                Json::Str(crate::core::model_artifact_id(&text)),
            ),
        ]))
    })
    .unwrap_or_else(fail_to_response)
}

/// Installs a restored model as the served state, recomputing the Gram
/// over any provided training graphs — shared by `load` and `load_file`.
fn install_model(
    state: &Mutex<ServerState>,
    request: &Json,
    model: HaqjskModel,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    let graphs = if request.get("graphs").is_some() {
        parse_graphs(request)?
    } else {
        Vec::new()
    };
    let labels = parse_labels(request, graphs.len())?;
    deadline.check("load: gram computation")?;
    let cache = FeatureCache::with_config(parse_cache_config(request));
    let gram = model
        .gram_matrix_cached(&graphs, &cache)
        .map_err(|e| format!("gram computation failed: {e:?}"))?;
    let response = Json::obj([
        ("ok", Json::Bool(true)),
        ("num_graphs", Json::Num(graphs.len() as f64)),
        ("levels", Json::Num(model.hierarchy().num_levels() as f64)),
    ]);
    state.lock().expect("state poisoned").fitted = Some(ModelState {
        model,
        cache,
        train_graphs: graphs,
        labels,
        gram,
        backend: None,
    });
    Ok(response)
}

fn cmd_load(
    state: &Mutex<ServerState>,
    request: &Json,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    let text = request
        .get("model")
        .and_then(Json::as_str)
        .ok_or("request needs a string field 'model'")?;
    let model = model_from_string(text).map_err(|e| e.to_string())?;
    install_model(state, request, model, deadline)
}

/// Restores a model from a checksum-verified file on the server's
/// filesystem ([`load_model_file`]) and installs it like `load`.
fn cmd_load_file(
    state: &Mutex<ServerState>,
    request: &Json,
    deadline: &RequestDeadline,
) -> Result<Json, Fail> {
    let path = request
        .get("path")
        .and_then(Json::as_str)
        .ok_or("request needs a string field 'path'")?;
    let model = load_model_file(Path::new(path)).map_err(|e| e.to_string())?;
    install_model(state, request, model, deadline)
}

/// One shard's counters on the wire.
fn shard_stats_to_json(shard: &ShardStats) -> Json {
    let mut pairs = vec![
        ("entries", Json::Num(shard.entries as f64)),
        ("hits", Json::Num(shard.hits as f64)),
        ("misses", Json::Num(shard.misses as f64)),
        ("evictions", Json::Num(shard.evictions as f64)),
        (
            "admission_rejects",
            Json::Num(shard.admission_rejects as f64),
        ),
        ("resident_bytes", Json::Num(shard.resident_bytes as f64)),
    ];
    if let Some(budget) = shard.budget_bytes {
        pairs.push(("budget_bytes", Json::Num(budget as f64)));
    }
    Json::obj(pairs)
}

/// The distributed-pool state on the wire: per-worker dispatch counters
/// plus dataset-dedup aggregates.
fn dist_stats_to_json(stats: &DistStats) -> Json {
    let workers = stats
        .workers
        .iter()
        .map(|w| {
            Json::obj([
                ("addr", Json::Str(w.addr.clone())),
                ("alive", Json::Bool(w.alive)),
                ("state", Json::Str(w.state.label().to_string())),
                ("tiles_dispatched", Json::Num(w.tiles_dispatched as f64)),
                ("tiles_completed", Json::Num(w.tiles_completed as f64)),
                ("tiles_redispatched", Json::Num(w.tiles_redispatched as f64)),
                ("bytes_shipped", Json::Num(w.bytes_shipped as f64)),
                ("datasets_shipped", Json::Num(w.datasets_shipped as f64)),
                ("deaths", Json::Num(w.deaths as f64)),
                ("reconnects", Json::Num(w.reconnects as f64)),
                ("store_misses", Json::Num(w.store_misses as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("workers", Json::Arr(workers)),
        ("epoch", Json::Num(stats.epoch as f64)),
        ("grams", Json::Num(stats.grams as f64)),
        ("tiles_scheduled", Json::Num(stats.tiles_scheduled as f64)),
        ("tiles_committed", Json::Num(stats.tiles_committed as f64)),
        (
            "artifacts_shipped",
            Json::Num(stats.artifacts_shipped as f64),
        ),
        (
            "local_fallback_grams",
            Json::Num(stats.local_fallback_grams as f64),
        ),
        (
            "local_fallback_tiles",
            Json::Num(stats.local_fallback_tiles as f64),
        ),
        (
            "dataset_keys_total",
            Json::Num(stats.dataset_keys_total as f64),
        ),
        (
            "dataset_keys_shipped",
            Json::Num(stats.dataset_keys_shipped as f64),
        ),
        ("dedup_hit_rate", Json::Num(stats.dedup_hit_rate())),
    ])
}

fn shard_stats_array(shards: &[ShardStats]) -> Json {
    Json::Arr(shards.iter().map(shard_stats_to_json).collect())
}

/// The whole metrics registry in one response: Prometheus text exposition
/// (`prometheus`) plus the engine-`Json` snapshot (`metrics`). One scrape
/// covers the engine, cache, eigen-batch, distributed and serve families.
fn cmd_metrics() -> Json {
    register_metric_exporters();
    let snapshot = crate::obs::registry().snapshot();
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "prometheus",
            Json::Str(crate::obs::render_prometheus(&snapshot)),
        ),
        ("metrics", crate::engine::obs::snapshot_to_json(&snapshot)),
    ])
}

/// Drains the span tracer's ring buffers: `spans` counts the records,
/// `dropped` the span records lost to ring overwrites since the last
/// drain, and `jsonl` carries the records one JSON object per line (empty
/// when tracing is disabled via `HAQJSK_TRACE=0`).
fn cmd_trace_dump() -> Json {
    let dump = crate::obs::drain_trace_jsonl();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("enabled", Json::Bool(crate::obs::trace_enabled())),
        ("spans", Json::Num(dump.spans as f64)),
        ("dropped", Json::Num(dump.dropped as f64)),
        ("jsonl", Json::Str(dump.jsonl)),
    ])
}

fn cmd_stats(serving: &Serving) -> Json {
    // The aggregate cache and eigen-batch counters are read back out of the
    // metrics registry — the same numbers a `metrics` scrape reports — so
    // `stats` and Prometheus can never disagree. Per-shard arrays, the
    // per-model aligned cache and the `distributed` object keep their
    // direct reads (they are not registry families).
    register_metric_exporters();
    let snapshot = crate::obs::registry().snapshot();
    let counter = |name: &str, cache: &str| {
        Json::Num(
            snapshot
                .counter_value(name, &[("cache", cache)])
                .unwrap_or(0) as f64,
        )
    };
    let gauge = |name: &str, cache: &str| {
        Json::Num(
            snapshot
                .gauge_value(name, &[("cache", cache)])
                .unwrap_or(0.0),
        )
    };
    let guard = serving.inner.state.lock().expect("state poisoned");
    let engine = Engine::global();
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("engine_threads", Json::Num(engine.threads() as f64)),
        (
            "engine_backend",
            Json::Str(engine.backend().label().to_string()),
        ),
        (
            "build",
            Json::obj([
                ("version", Json::Str(env!("CARGO_PKG_VERSION").to_string())),
                (
                    "simd_path",
                    Json::Str(crate::linalg::active_simd_label().to_string()),
                ),
                ("backend", Json::Str(engine.backend().label().to_string())),
            ]),
        ),
        (
            "density_cache_hits",
            counter("haqjsk_cache_hits_total", "density"),
        ),
        (
            "density_cache_misses",
            counter("haqjsk_cache_misses_total", "density"),
        ),
        (
            "density_cache_entries",
            gauge("haqjsk_cache_entries", "density"),
        ),
        (
            "density_cache_evictions",
            counter("haqjsk_cache_evictions_total", "density"),
        ),
        (
            "density_cache_admission_rejects",
            counter("haqjsk_cache_admission_rejects_total", "density"),
        ),
        (
            "cache_admission",
            Json::Str(
                crate::kernels::features::density_cache()
                    .admission()
                    .label()
                    .to_string(),
            ),
        ),
        (
            "density_cache_resident_bytes",
            gauge("haqjsk_cache_resident_bytes", "density"),
        ),
        (
            "density_cache_shards",
            shard_stats_array(&density_cache_shard_stats()),
        ),
    ];
    // Overload/lifecycle state: the serving loop's admission and drain
    // posture, readable without a Prometheus scrape.
    let draining = serving.drain_requested();
    pairs.push((
        "serve_state",
        Json::Str(if draining { "draining" } else { "serving" }.to_string()),
    ));
    pairs.push((
        "active_connections",
        Json::Num(
            serving
                .inner
                .control
                .get()
                .map_or(0, ServeControl::active_connections) as f64,
        ),
    ));
    pairs.push((
        "heavy_inflight",
        Json::Num(serving.inner.heavy_inflight.load(Ordering::Acquire) as f64),
    ));
    pairs.push((
        "max_inflight_heavy",
        Json::Num(serving.inner.config.max_inflight_heavy as f64),
    ));
    let family_sum = |name: &str| {
        Json::Num(
            snapshot
                .family(name)
                .iter()
                .map(|entry| match &entry.value {
                    crate::obs::MetricValue::Counter(v) => *v as f64,
                    crate::obs::MetricValue::Gauge(v) => *v,
                    crate::obs::MetricValue::Histogram(h) => h.count as f64,
                })
                .sum::<f64>(),
        )
    };
    pairs.push((
        "requests_rejected",
        family_sum("haqjsk_serve_rejected_total"),
    ));
    pairs.push((
        "deadline_exceeded",
        family_sum("haqjsk_serve_deadline_exceeded_total"),
    ));
    pairs.push((
        "conns_rejected",
        family_sum("haqjsk_serve_conns_rejected_total"),
    ));
    pairs.push((
        "frames_oversized",
        family_sum("haqjsk_serve_frames_oversized_total"),
    ));
    pairs.push(("io_timeouts", family_sum("haqjsk_serve_io_timeouts_total")));
    pairs.push(("handler_panics", family_sum("haqjsk_serve_panics_total")));
    // The spectral/alignment artifact caches introduced with the per-pair
    // fast path (entropies and Umeyama bases hoisted out of the Gram pair
    // loop) are observable alongside the density cache they derive from.
    pairs.push((
        "spectral_cache_hits",
        counter("haqjsk_cache_hits_total", "spectral"),
    ));
    pairs.push((
        "spectral_cache_misses",
        counter("haqjsk_cache_misses_total", "spectral"),
    ));
    pairs.push((
        "spectral_cache_entries",
        gauge("haqjsk_cache_entries", "spectral"),
    ));
    pairs.push((
        "alignment_cache_hits",
        counter("haqjsk_cache_hits_total", "alignment"),
    ));
    pairs.push((
        "alignment_cache_misses",
        counter("haqjsk_cache_misses_total", "alignment"),
    ));
    pairs.push((
        "alignment_cache_entries",
        gauge("haqjsk_cache_entries", "alignment"),
    ));
    pairs.push(("wl_cache_hits", counter("haqjsk_cache_hits_total", "wl")));
    pairs.push((
        "wl_cache_misses",
        counter("haqjsk_cache_misses_total", "wl"),
    ));
    pairs.push(("wl_cache_entries", gauge("haqjsk_cache_entries", "wl")));
    // Batched-eigensolver counters: how much of the mixture eigen work the
    // tile-batched Gram paths actually ran lane-parallel.
    let plain = |name: &str| snapshot.counter_value(name, &[]).unwrap_or(0) as f64;
    let batched_calls = plain("haqjsk_eigen_batched_calls_total");
    let batched_matrices = plain("haqjsk_eigen_batched_matrices_total");
    pairs.push(("eigen_batched_calls", Json::Num(batched_calls)));
    pairs.push(("eigen_batched_matrices", Json::Num(batched_matrices)));
    pairs.push((
        "eigen_scalar_fallbacks",
        Json::Num(plain("haqjsk_eigen_scalar_fallbacks_total")),
    ));
    pairs.push((
        "eigen_mean_batch",
        Json::Num(if batched_calls > 0.0 {
            batched_matrices / batched_calls
        } else {
            0.0
        }),
    ));
    // SIMD dispatch of the batched eigensolver: the active path plus the
    // per-path solve counters (mirrors the `haqjsk_eigen_simd_path` info
    // gauge and `haqjsk_eigen_simd_calls_total` family in the registry).
    pairs.push((
        "eigen_simd_path",
        Json::Str(haqjsk_linalg::active_simd_label().to_string()),
    ));
    pairs.push((
        "eigen_simd_calls",
        Json::obj(haqjsk_linalg::SimdPath::ALL.map(|path| {
            (
                path.label(),
                Json::Num(
                    snapshot
                        .counter_value("haqjsk_eigen_simd_calls_total", &[("path", path.label())])
                        .unwrap_or(0) as f64,
                ),
            )
        })),
    ));
    // Distributed-pool state, when a worker pool is installed: per-worker
    // tiles dispatched / completed / re-dispatched, bytes shipped, and the
    // dataset-dedup hit rate.
    if let Some(coordinator) = crate::dist::current_coordinator() {
        pairs.push(("distributed", dist_stats_to_json(&coordinator.stats())));
    }
    match guard.fitted.as_ref() {
        None => pairs.push(("fitted", Json::Bool(false))),
        Some(fitted) => {
            let stats = fitted.cache.stats();
            pairs.push(("fitted", Json::Bool(true)));
            pairs.push(("num_graphs", Json::Num(fitted.train_graphs.len() as f64)));
            pairs.push(("aligned_cache_hits", Json::Num(stats.hits as f64)));
            pairs.push(("aligned_cache_misses", Json::Num(stats.misses as f64)));
            pairs.push(("aligned_cache_entries", Json::Num(stats.entries as f64)));
            pairs.push(("aligned_cache_evictions", Json::Num(stats.evictions as f64)));
            pairs.push((
                "aligned_cache_admission_rejects",
                Json::Num(stats.admission_rejects as f64),
            ));
            pairs.push((
                "aligned_cache_resident_bytes",
                Json::Num(stats.resident_bytes as f64),
            ));
            if let Some(budget) = fitted.cache.budget_bytes() {
                pairs.push(("aligned_cache_budget_bytes", Json::Num(budget as f64)));
            }
            pairs.push((
                "aligned_cache_shards",
                shard_stats_array(&fitted.cache.shard_stats()),
            ));
        }
    }
    Json::obj(pairs)
}
