//! # haqjsk
//!
//! Hierarchical-Aligned Quantum Jensen–Shannon Kernels for graph
//! classification — a from-scratch Rust reproduction of Bai, Cui, Wang, Li
//! and Hancock's HAQJSK paper.
//!
//! This umbrella crate re-exports the public API of the workspace crates so
//! downstream users depend on a single crate:
//!
//! * [`linalg`] — dense matrices, symmetric eigendecomposition, Hungarian
//!   assignment, complex arithmetic,
//! * [`graph`] — graphs, shortest paths, expansion subgraphs, generators,
//! * [`quantum`] — continuous-time quantum walks, density matrices, von
//!   Neumann entropy and the quantum Jensen–Shannon divergence,
//! * [`engine`] — the parallel Gram-computation engine: the shared worker
//!   pool (`HAQJSK_THREADS` controls its size), pluggable Gram execution
//!   backends (serial / tiled / batched-tile, `HAQJSK_BACKEND` selects the
//!   default), the sharded LRU feature cache with optional byte budgets
//!   (`HAQJSK_CACHE_SHARDS` / `HAQJSK_CACHE_BUDGET`), incremental Gram
//!   extension plus sliding-window retention, and the JSON-lines TCP
//!   serving substrate,
//! * [`dist`] — distributed tile execution: a coordinator that fans one
//!   Gram matrix's tiles out over `haqjsk-worker` processes
//!   (`HAQJSK_BACKEND=dist:addr,addr`), with content-hash-deduplicated
//!   dataset shipping, straggler re-dispatch and byte-identical local
//!   fallback,
//! * [`kernels`] — the baseline graph kernels (QJSK, WLSK, SPGK, GCGK,
//!   random walk, JTQK, depth-based aligned) and kernel-matrix utilities,
//! * [`core`] — the HAQJSK kernels themselves,
//! * [`ml`] — kernel C-SVMs, cross-validation, and the GCN / WL-MLP
//!   comparison models,
//! * [`datasets`] — synthetic stand-ins for the paper's twelve benchmark
//!   datasets.
//!
//! ## The engine and the serving protocol
//!
//! All Gram computation routes through [`engine::Engine::global`]: per-graph
//! features (CTQW density matrices, hierarchical aligned structures) are
//! extracted once per distinct graph — memoised in an
//! [`engine::FeatureCache`] keyed by a structural graph hash — and the
//! `n(n+1)/2` pairwise kernel evaluations are scheduled as cache-friendly
//! tiles over a persistent worker pool. Streaming workloads append
//! out-of-sample rows/columns to an existing Gram matrix through
//! `HaqjskModel::gram_matrix_extended` instead of recomputing it.
//!
//! The `haqjsk-serve` binary exposes fit / transform / kernel-row / append /
//! predict / save / load / stats over a `TcpListener` speaking JSON-lines
//! (one request object per line, one response line back; see the binary's
//! module docs for the command table). Models persist through
//! [`core::model_to_string`] / [`core::model_from_string`], so a model can
//! be fitted offline, saved, and loaded into a serving process.
//!
//! ## Quickstart
//!
//! ```
//! use haqjsk::core::{HaqjskConfig, HaqjskModel, HaqjskVariant};
//! use haqjsk::graph::generators::{cycle_graph, star_graph};
//!
//! let graphs = vec![cycle_graph(8), star_graph(8), cycle_graph(9), star_graph(9)];
//! let model = HaqjskModel::fit(
//!     &graphs,
//!     HaqjskConfig::small(),
//!     HaqjskVariant::AlignedAdjacency,
//! )
//! .expect("non-empty dataset");
//! let gram = model.gram_matrix(&graphs).expect("valid graphs");
//! assert_eq!(gram.len(), 4);
//! // Structurally similar graphs are more similar than dissimilar ones.
//! assert!(gram.get(0, 2) > gram.get(0, 1));
//! ```

/// Dense linear algebra substrate (re-export of `haqjsk-linalg`).
pub use haqjsk_linalg as linalg;

/// Graph substrate (re-export of `haqjsk-graph`).
pub use haqjsk_graph as graph;

/// Quantum-walk machinery (re-export of `haqjsk-quantum`).
pub use haqjsk_quantum as quantum;

/// The parallel Gram-computation engine (re-export of `haqjsk-engine`).
pub use haqjsk_engine as engine;

/// Distributed tile execution — the coordinator/worker RPC backend that
/// spans one Gram matrix across processes and machines (re-export of
/// `haqjsk-dist`). Select with `HAQJSK_BACKEND=dist:host:port,...` plus
/// [`dist::install_from_env`], or drive it programmatically through
/// [`dist::Coordinator`]. See `docs/distributed.md`.
pub use haqjsk_dist as dist;

/// Baseline graph kernels and kernel-matrix utilities (re-export of
/// `haqjsk-kernels`).
pub use haqjsk_kernels as kernels;

/// Observability substrate — the process-wide metrics registry (counters,
/// gauges, log-linear latency histograms), span tracer, and Prometheus
/// text exposition (re-export of `haqjsk-obs`). See `docs/observability.md`.
pub use haqjsk_obs as obs;

/// The HAQJSK kernels (re-export of `haqjsk-core`).
pub use haqjsk_core as core;

/// SVMs, cross-validation and neural comparison models (re-export of
/// `haqjsk-ml`).
pub use haqjsk_ml as ml;

/// Synthetic benchmark datasets (re-export of `haqjsk-datasets`).
pub use haqjsk_datasets as datasets;

pub mod serving;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::core::{HaqjskConfig, HaqjskModel, HaqjskVariant};
    pub use crate::datasets::{generate_by_name, GeneratedDataset};
    pub use crate::engine::{BackendKind, CacheConfig, Engine, FeatureCache};
    pub use crate::graph::Graph;
    pub use crate::kernels::{GraphKernel, KernelMatrix};
    pub use crate::ml::{cross_validate_kernel, CrossValidationConfig};
    pub use crate::quantum::{ctqw_density_infinite, qjsd, von_neumann_entropy, DensityMatrix};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let dataset = generate_by_name("MUTAG", 16, 1, 1).expect("known dataset");
        assert!(!dataset.is_empty());
        let model = HaqjskModel::fit(
            &dataset.graphs,
            HaqjskConfig {
                hierarchy_levels: 2,
                num_prototypes: 8,
                layer_cap: 3,
                ..HaqjskConfig::small()
            },
            HaqjskVariant::AlignedDensity,
        )
        .expect("fit succeeds");
        let gram = model.gram_matrix(&dataset.graphs).expect("gram succeeds");
        assert_eq!(gram.len(), dataset.len());
        assert!(gram.is_positive_semidefinite(1e-6).unwrap());
    }
}
