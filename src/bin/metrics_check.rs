//! `metrics_check` — CI guard over the Prometheus exposition.
//!
//! Launches the `haqjsk-serve` binary built into the same target directory,
//! drives one small fit over the wire so every layer records samples, then
//! scrapes the `metrics` op once and fails when:
//!
//! * the exposition does not survive the strict parser — malformed lines,
//!   missing or duplicate `# TYPE` declarations (a family registered twice
//!   with conflicting types can never render a single consistent TYPE
//!   line), non-cumulative histogram buckets, or a `+Inf` bucket that
//!   disagrees with `_count`; or
//! * any of the engine / cache / dist / serve metric families is absent
//!   from the single scrape.
//!
//! It then exercises the HTTP observability sidecar over real sockets:
//! `GET /metrics` must parse under the same strict parser and carry every
//! typed family the wire-op scrape carried (the sidecar's own
//! `haqjsk_http_*` families are the only permitted additions), `GET
//! /healthz` must answer 200 while serving — and flip to 503 during a
//! `SIGTERM` drain, observed while a deliberately half-sent frame holds
//! the drain open.
//!
//! Usage: `cargo run --release --bin metrics_check`

use haqjsk::engine::serve::graph_to_json;
use haqjsk::engine::Json;
use haqjsk::graph::generators::{cycle_graph, star_graph};
use haqjsk::obs::parse_exposition;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn fail(message: &str) -> ! {
    eprintln!("metrics_check: {message}");
    std::process::exit(1);
}

/// The serve process under test, killed on drop so a failing check never
/// leaks a listener.
struct ServeProcess {
    child: std::process::Child,
    addr: String,
    http_addr: String,
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve() -> ServeProcess {
    let bin = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .join("haqjsk-serve");
    if !bin.exists() {
        fail(&format!(
            "{} not found (build the workspace first: cargo build --release)",
            bin.display()
        ));
    }
    let mut child = std::process::Command::new(bin)
        .arg("127.0.0.1:0")
        .arg("--http-addr")
        .arg("127.0.0.1:0")
        .env_remove("HAQJSK_BACKEND")
        // Generous drain budget: the drain check below holds the drain
        // open deliberately and must release it before this expires.
        .env("HAQJSK_SERVE_DRAIN_MS", "30000")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn haqjsk-serve: {e}")));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    // Banner shapes: "haqjsk-serve listening on 127.0.0.1:PORT (...)",
    // then "haqjsk-serve http listening on 127.0.0.1:PORT".
    let mut banner_addr = |what: &str| {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .unwrap_or_else(|e| fail(&format!("cannot read {what} banner: {e}")));
        line.split_whitespace()
            .find(|token| {
                token.contains(':')
                    && token
                        .rsplit(':')
                        .next()
                        .is_some_and(|p| p.parse::<u16>().is_ok())
            })
            .unwrap_or_else(|| fail(&format!("no {what} listen address in banner: {line:?}")))
            .to_string()
    };
    let addr = banner_addr("serve");
    let http_addr = banner_addr("http");
    ServeProcess {
        child,
        addr,
        http_addr,
    }
}

/// One blocking HTTP/1.1 GET over a fresh connection; returns the status
/// code and body.
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to http {addr}: {e}")));
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: metrics-check\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .and_then(|()| stream.flush())
        .unwrap_or_else(|e| fail(&format!("http send failed: {e}")));
    let mut raw = String::new();
    std::io::Read::read_to_string(&mut stream, &mut raw)
        .unwrap_or_else(|e| fail(&format!("http read failed: {e}")));
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .unwrap_or_else(|| fail(&format!("malformed http status line: {raw:?}")));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    (status, body)
}

fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, body: &str) -> Json {
    stream
        .write_all(body.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .unwrap_or_else(|e| fail(&format!("send failed: {e}")));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| fail(&format!("read failed: {e}")));
    let response =
        Json::parse(line.trim()).unwrap_or_else(|e| fail(&format!("malformed response: {e}")));
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        fail(&format!("request {body} failed: {response}"));
    }
    response
}

fn main() {
    let serve = spawn_serve();
    let stream = TcpStream::connect(&serve.addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {}: {e}", serve.addr)));
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;

    // One small fit so the engine Gram histograms and feature caches carry
    // real samples in the scrape.
    let graphs: Vec<Json> = (5..9)
        .flat_map(|n| {
            [
                graph_to_json(&cycle_graph(n)),
                graph_to_json(&star_graph(n)),
            ]
        })
        .collect();
    request(
        &mut stream,
        &mut reader,
        &format!(
            "{{\"cmd\":\"fit\",\"graphs\":{},\"variant\":\"A\",\"config\":{{\
             \"hierarchy_levels\":2,\"num_prototypes\":8,\"layer_cap\":3,\
             \"kmeans_max_iterations\":15}}}}",
            Json::Arr(graphs)
        ),
    );

    // The one scrape under test.
    let response = request(&mut stream, &mut reader, "{\"cmd\":\"metrics\"}");
    let text = response
        .get("prometheus")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("metrics response carries no 'prometheus' text"));
    let exposition = parse_exposition(text)
        .unwrap_or_else(|e| fail(&format!("unparseable exposition: {e}\n---\n{text}")));

    let required = [
        "haqjsk_gram_build_seconds",
        "haqjsk_kernel_gram_seconds",
        "haqjsk_cache_hits_total",
        "haqjsk_cache_entries",
        "haqjsk_eigen_batched_calls_total",
        "haqjsk_eigen_simd_path",
        "haqjsk_eigen_simd_calls_total",
        "haqjsk_dist_grams_total",
        "haqjsk_dist_workers",
        "haqjsk_serve_requests_total",
        "haqjsk_serve_request_seconds",
        "haqjsk_serve_inflight",
    ];
    for family in required {
        if !exposition.has_family(family) {
            fail(&format!("scrape is missing metric family {family}"));
        }
    }
    if !exposition.has_family("haqjsk_build_info") {
        fail("scrape is missing metric family haqjsk_build_info");
    }

    // --- HTTP sidecar: /healthz then /metrics over real sockets. The
    // healthz request goes first so the sidecar's own haqjsk_http_*
    // families exist by the time /metrics snapshots the registry.
    let (status, body) = http_get(&serve.http_addr, "/healthz");
    if status != 200 || body.trim() != "ok" {
        fail(&format!(
            "GET /healthz while serving: {status} {body:?} (want 200 ok)"
        ));
    }
    let (status, http_text) = http_get(&serve.http_addr, "/metrics");
    if status != 200 {
        fail(&format!("GET /metrics: status {status} (want 200)"));
    }
    let http_exposition = parse_exposition(&http_text).unwrap_or_else(|e| {
        fail(&format!(
            "unparseable http exposition: {e}\n---\n{http_text}"
        ))
    });
    // Same families both ways: everything the wire op exposed must be in
    // the HTTP scrape, and the HTTP scrape may add only its own transport
    // families (the registry never shrinks, so no allowance the other way).
    for family in exposition.types.keys() {
        if !http_exposition.has_family(family) {
            fail(&format!(
                "http scrape is missing wire-scrape family {family}"
            ));
        }
    }
    for family in http_exposition.types.keys() {
        if !exposition.has_family(family) && !family.starts_with("haqjsk_http_") {
            fail(&format!(
                "http scrape grew unexpected non-http family {family}"
            ));
        }
    }
    if !http_exposition.has_family("haqjsk_http_requests_total") {
        fail("http scrape is missing its own family haqjsk_http_requests_total");
    }

    // --- SIGTERM drain: hold the drain open with a half-sent frame, then
    // watch /healthz flip to 503.
    let mut held = TcpStream::connect(&serve.addr)
        .unwrap_or_else(|e| fail(&format!("cannot open held connection: {e}")));
    held.write_all(b"{")
        .and_then(|()| held.flush())
        .unwrap_or_else(|e| fail(&format!("cannot half-send a frame: {e}")));
    let pid = serve.child.id();
    let killed = std::process::Command::new("kill")
        .arg(pid.to_string())
        .status()
        .unwrap_or_else(|e| fail(&format!("cannot run kill: {e}")));
    if !killed.success() {
        fail(&format!("kill -TERM {pid} failed"));
    }
    let drain_seen = std::time::Instant::now();
    loop {
        let (status, body) = http_get(&serve.http_addr, "/healthz");
        if status == 503 && body.trim() == "draining" {
            break;
        }
        if drain_seen.elapsed() > std::time::Duration::from_secs(10) {
            fail(&format!(
                "GET /healthz never reported the drain: last answer {status} {body:?}"
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    // Release the drain and require a clean exit.
    drop(held);
    drop(stream);
    drop(reader);
    let mut serve = serve;
    let exit = serve
        .child
        .wait()
        .unwrap_or_else(|e| fail(&format!("cannot wait for drained serve: {e}")));
    if !exit.success() {
        fail(&format!("drained serve exited with {exit}"));
    }

    println!(
        "metrics_check: OK — {} samples across {} typed families; engine, cache, dist and serve all present in one scrape; http /metrics parse-identical ({} families) and /healthz flipped 200→503 through a SIGTERM drain",
        exposition.samples.len(),
        exposition.types.len(),
        http_exposition.types.len()
    );
}
