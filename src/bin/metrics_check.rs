//! `metrics_check` — CI guard over the Prometheus exposition.
//!
//! Launches the `haqjsk-serve` binary built into the same target directory,
//! drives one small fit over the wire so every layer records samples, then
//! scrapes the `metrics` op once and fails when:
//!
//! * the exposition does not survive the strict parser — malformed lines,
//!   missing or duplicate `# TYPE` declarations (a family registered twice
//!   with conflicting types can never render a single consistent TYPE
//!   line), non-cumulative histogram buckets, or a `+Inf` bucket that
//!   disagrees with `_count`; or
//! * any of the engine / cache / dist / serve metric families is absent
//!   from the single scrape.
//!
//! Usage: `cargo run --release --bin metrics_check`

use haqjsk::engine::serve::graph_to_json;
use haqjsk::engine::Json;
use haqjsk::graph::generators::{cycle_graph, star_graph};
use haqjsk::obs::parse_exposition;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn fail(message: &str) -> ! {
    eprintln!("metrics_check: {message}");
    std::process::exit(1);
}

/// The serve process under test, killed on drop so a failing check never
/// leaks a listener.
struct ServeProcess {
    child: std::process::Child,
    addr: String,
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve() -> ServeProcess {
    let bin = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .join("haqjsk-serve");
    if !bin.exists() {
        fail(&format!(
            "{} not found (build the workspace first: cargo build --release)",
            bin.display()
        ));
    }
    let mut child = std::process::Command::new(bin)
        .arg("127.0.0.1:0")
        .env_remove("HAQJSK_BACKEND")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn haqjsk-serve: {e}")));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .unwrap_or_else(|e| fail(&format!("cannot read serve banner: {e}")));
    // Banner shape: "haqjsk-serve listening on 127.0.0.1:PORT (...)".
    let addr = line
        .split_whitespace()
        .find(|token| {
            token.contains(':')
                && token
                    .rsplit(':')
                    .next()
                    .is_some_and(|p| p.parse::<u16>().is_ok())
        })
        .unwrap_or_else(|| fail(&format!("no listen address in banner: {line:?}")))
        .to_string();
    ServeProcess { child, addr }
}

fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, body: &str) -> Json {
    stream
        .write_all(body.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .unwrap_or_else(|e| fail(&format!("send failed: {e}")));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| fail(&format!("read failed: {e}")));
    let response =
        Json::parse(line.trim()).unwrap_or_else(|e| fail(&format!("malformed response: {e}")));
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        fail(&format!("request {body} failed: {response}"));
    }
    response
}

fn main() {
    let serve = spawn_serve();
    let stream = TcpStream::connect(&serve.addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to {}: {e}", serve.addr)));
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;

    // One small fit so the engine Gram histograms and feature caches carry
    // real samples in the scrape.
    let graphs: Vec<Json> = (5..9)
        .flat_map(|n| {
            [
                graph_to_json(&cycle_graph(n)),
                graph_to_json(&star_graph(n)),
            ]
        })
        .collect();
    request(
        &mut stream,
        &mut reader,
        &format!(
            "{{\"cmd\":\"fit\",\"graphs\":{},\"variant\":\"A\",\"config\":{{\
             \"hierarchy_levels\":2,\"num_prototypes\":8,\"layer_cap\":3,\
             \"kmeans_max_iterations\":15}}}}",
            Json::Arr(graphs)
        ),
    );

    // The one scrape under test.
    let response = request(&mut stream, &mut reader, "{\"cmd\":\"metrics\"}");
    let text = response
        .get("prometheus")
        .and_then(Json::as_str)
        .unwrap_or_else(|| fail("metrics response carries no 'prometheus' text"));
    let exposition = parse_exposition(text)
        .unwrap_or_else(|e| fail(&format!("unparseable exposition: {e}\n---\n{text}")));

    let required = [
        "haqjsk_gram_build_seconds",
        "haqjsk_kernel_gram_seconds",
        "haqjsk_cache_hits_total",
        "haqjsk_cache_entries",
        "haqjsk_eigen_batched_calls_total",
        "haqjsk_eigen_simd_path",
        "haqjsk_eigen_simd_calls_total",
        "haqjsk_dist_grams_total",
        "haqjsk_dist_workers",
        "haqjsk_serve_requests_total",
        "haqjsk_serve_request_seconds",
        "haqjsk_serve_inflight",
    ];
    for family in required {
        if !exposition.has_family(family) {
            fail(&format!("scrape is missing metric family {family}"));
        }
    }

    println!(
        "metrics_check: OK — {} samples across {} typed families; engine, cache, dist and serve all present in one scrape",
        exposition.samples.len(),
        exposition.types.len()
    );
}
