//! `haqjsk-serve` — the TCP kernel-serving binary.
//!
//! A thin wrapper around [`haqjsk::serving`]: binds the address, spawns the
//! JSON-lines server and supervises its lifecycle. See the `serving` module
//! docs and `docs/serving.md` for the full command table, wire format and
//! overload knobs (`HAQJSK_SERVE_*`).
//!
//! Usage: `haqjsk-serve [ADDR] [--model PATH] [--http-addr ADDR]` (default
//! `127.0.0.1:7878`; worker count via `HAQJSK_THREADS`).
//!
//! `--http-addr ADDR` (or the `HAQJSK_HTTP_ADDR` environment variable)
//! additionally mounts the HTTP observability sidecar: `GET /metrics`
//! (Prometheus text), `/healthz` (200 serving / 503 draining-or-
//! overloaded), `/traces` (drained spans as JSON lines) and
//! `/debug/requests` (the flight recorder). See `docs/observability.md`.
//!
//! `--model PATH` enables crash-safe persistence: an existing model at
//! `PATH` is loaded (checksum-verified) before serving; a stray `PATH.tmp`
//! from a save that died mid-write is reported loudly and refuses startup
//! (the previous committed model, if any, is what loads). The same path is
//! the natural target for the `save_file` serving op.
//!
//! On `SIGTERM`/`SIGINT` — or a `drain` request over the wire — the server
//! drains gracefully: it stops accepting, answers requests already in
//! flight, closes idle connections, and exits `0` once drained (or `1` if
//! connections were still busy when `HAQJSK_SERVE_DRAIN_MS`, default
//! 5000, expired).

use haqjsk::engine::{CacheConfig, Engine, Json};
use haqjsk::serving::{Serving, ServingConfig};
use std::time::Duration;

/// Environment variable bounding the graceful-drain phase, in ms.
const DRAIN_ENV_VAR: &str = "HAQJSK_SERVE_DRAIN_MS";

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        // Only an atomic flag store: async-signal-safe, observed by the
        // supervision loop in main.
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Routes SIGTERM and SIGINT into the drain flag.
    pub fn install() {
        let handler = on_term as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

struct Args {
    addr: String,
    model: Option<String>,
    http_addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut model = None;
    let mut http_addr = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--model" => {
                model = Some(argv.next().ok_or("--model needs a PATH argument")?);
            }
            "--http-addr" => {
                http_addr = Some(argv.next().ok_or("--http-addr needs an ADDR argument")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: haqjsk-serve [ADDR] [--model PATH] [--http-addr ADDR]".to_string(),
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => {
                if addr.replace(other.to_string()).is_some() {
                    return Err("at most one ADDR argument".to_string());
                }
            }
        }
    }
    Ok(Args {
        addr: addr.unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        model,
        // The flag wins over the `HAQJSK_HTTP_ADDR` environment default.
        http_addr: http_addr.or_else(|| {
            std::env::var(haqjsk::serving::HTTP_ADDR_ENV_VAR)
                .ok()
                .filter(|raw| !raw.trim().is_empty())
        }),
    })
}

fn drain_deadline() -> Duration {
    let ms = std::env::var(DRAIN_ENV_VAR)
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .unwrap_or(5000);
    Duration::from_millis(ms)
}

/// Loads the `--model` file through the production `load_file` handler
/// (checksum verification, `.tmp` torn-write detection). A missing file
/// with no stray `.tmp` is a fresh start, not an error — the path is then
/// simply the target for future `save_file`s.
fn recover_model(serving: &Serving, path: &str) {
    let model_path = std::path::Path::new(path);
    let tmp = haqjsk::core::tmp_sibling(model_path);
    if !model_path.exists() && !tmp.exists() {
        eprintln!("haqjsk-serve: no model at {path} yet; starting unfitted");
        return;
    }
    let request = Json::obj([
        ("cmd", Json::Str("load_file".to_string())),
        ("path", Json::Str(path.to_string())),
    ]);
    let response = serving.handle(&request);
    if let Some(error) = response.get("error").and_then(Json::as_str) {
        eprintln!("haqjsk-serve: cannot recover model from {path}: {error}");
        std::process::exit(1);
    }
    eprintln!("haqjsk-serve: recovered model from {path}");
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("haqjsk-serve: {e}");
        std::process::exit(2);
    });
    // `HAQJSK_BACKEND=dist:<addr,addr>` wires up the distributed worker
    // pool; an unreachable pool is fatal at startup (silently computing
    // locally would defeat the point of configuring one).
    match haqjsk::dist::install_from_env() {
        Ok(None) => {}
        Ok(Some(coordinator)) => {
            eprintln!(
                "haqjsk-serve: distributed backend with {} workers",
                coordinator.num_workers()
            );
        }
        Err(e) => {
            eprintln!("haqjsk-serve: {e}");
            std::process::exit(1);
        }
    }
    let config = ServingConfig::from_env().unwrap_or_else(|e| {
        eprintln!("haqjsk-serve: {e}");
        std::process::exit(2);
    });
    let serving = Serving::new(config);
    if let Some(path) = &args.model {
        recover_model(&serving, path);
    }
    sig::install();
    let mut server = serving.spawn(&args.addr).unwrap_or_else(|e| {
        eprintln!("haqjsk-serve: cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    // The HTTP observability sidecar is optional; a bad bind is fatal (a
    // configured-but-dead scrape endpoint is worse than none).
    let mut http_server = args.http_addr.as_ref().map(|http_addr| {
        serving.spawn_http(http_addr).unwrap_or_else(|e| {
            eprintln!("haqjsk-serve: cannot bind http {http_addr}: {e}");
            std::process::exit(1);
        })
    });
    let engine = Engine::global();
    let cache = CacheConfig::from_env();
    println!(
        "haqjsk-serve listening on {} ({} engine workers, '{}' backend, {} cache shards, cache budget {})",
        server.local_addr(),
        engine.threads(),
        engine.backend(),
        cache.shards,
        cache
            .budget_bytes
            .map_or_else(|| "unbounded".to_string(), |b| format!("{b} bytes")),
    );
    if let Some(http) = &http_server {
        println!("haqjsk-serve http listening on {}", http.local_addr());
    }
    // The accept loop runs on its own thread; supervise the lifecycle
    // flags (signal handler, `drain` op) until a drain is requested.
    loop {
        if sig::requested() || serving.drain_requested() {
            let deadline = drain_deadline();
            eprintln!(
                "haqjsk-serve: drain requested; draining for up to {} ms",
                deadline.as_millis()
            );
            let report = server.drain(deadline);
            // Last words: the flight recorder's recent/slow request
            // summaries, so a post-mortem has them even with no scraper
            // attached. The HTTP sidecar stays up through the drain (so
            // `/healthz` reports 503) and closes here.
            let flight = haqjsk::obs::flight_jsonl();
            if !flight.is_empty() {
                eprint!("haqjsk-serve: flight recorder at exit:\n{flight}");
            }
            if let Some(mut http) = http_server.take() {
                http.shutdown();
            }
            if report.drained {
                eprintln!("haqjsk-serve: drained cleanly; exiting");
                std::process::exit(0);
            }
            eprintln!(
                "haqjsk-serve: drain deadline expired with {} connection(s) still open",
                report.remaining_connections
            );
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
