//! `haqjsk-serve` — the TCP kernel-serving binary.
//!
//! A thin wrapper around [`haqjsk::serving`]: binds the address, spawns the
//! JSON-lines server and parks. See the `serving` module docs for the full
//! command table and wire format.
//!
//! Usage: `haqjsk-serve [ADDR]` (default `127.0.0.1:7878`; worker count via
//! `HAQJSK_THREADS`).

use haqjsk::engine::{CacheConfig, Engine};
use haqjsk::serving::spawn_server;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    // `HAQJSK_BACKEND=dist:<addr,addr>` wires up the distributed worker
    // pool; an unreachable pool is fatal at startup (silently computing
    // locally would defeat the point of configuring one).
    match haqjsk::dist::install_from_env() {
        Ok(None) => {}
        Ok(Some(coordinator)) => {
            println!(
                "haqjsk-serve: distributed backend with {} workers",
                coordinator.num_workers()
            );
        }
        Err(e) => {
            eprintln!("haqjsk-serve: {e}");
            std::process::exit(1);
        }
    }
    let server = spawn_server(&addr).unwrap_or_else(|e| {
        eprintln!("haqjsk-serve: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let engine = Engine::global();
    let cache = CacheConfig::from_env();
    println!(
        "haqjsk-serve listening on {} ({} engine workers, '{}' backend, {} cache shards, cache budget {})",
        server.local_addr(),
        engine.threads(),
        engine.backend(),
        cache.shards,
        cache
            .budget_bytes
            .map_or_else(|| "unbounded".to_string(), |b| format!("{b} bytes")),
    );
    // The accept loop runs on its own thread; keep the process alive.
    loop {
        std::thread::park();
    }
}
