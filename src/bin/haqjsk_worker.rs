//! `haqjsk-worker` — the distributed tile-execution worker binary.
//!
//! Runs one [`haqjsk::dist::WorkerServer`]: a TCP JSON-lines server that
//! receives a dataset once (content-hash-deduplicated) and then evaluates
//! tile work units (`kernel id + params + index-pair tile`) with its own
//! local engine, warming its own sharded feature caches. Point a
//! coordinator at it with `HAQJSK_BACKEND=dist:host:port[,host:port...]`.
//!
//! Usage: `haqjsk-worker [ADDR]` (default `127.0.0.1:0`, i.e. an ephemeral
//! port). The bound address is printed on stdout as
//! `haqjsk-worker listening on HOST:PORT` — process-pool launchers parse
//! that line to learn the port. Worker threads via `HAQJSK_THREADS`,
//! feature-cache shape via `HAQJSK_CACHE_*`. The `shutdown` command exits
//! the process.

use haqjsk::dist::{WorkerOptions, WorkerServer};
use haqjsk::engine::Engine;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let server = WorkerServer::spawn(
        &addr,
        WorkerOptions {
            exit_on_shutdown: true,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("haqjsk-worker: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    // The address line is machine-parsed by process-pool launchers; print
    // it first and flush before any other output.
    println!("haqjsk-worker listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!(
        "haqjsk-worker: {} engine workers ready",
        Engine::global().threads()
    );
    // The accept loop runs on its own thread; keep the process alive.
    loop {
        std::thread::park();
    }
}
