//! Molecule-style graph classification on the MUTAG / PTC(MR) stand-ins.
//!
//! This mirrors the bioinformatics columns of the paper's Table IV at a
//! reduced scale: generate the synthetic MUTAG stand-in, compute the
//! HAQJSK(A), HAQJSK(D) and two baseline kernels, and report C-SVM
//! cross-validation accuracy for each.
//!
//! Run with:
//! ```text
//! cargo run --release --example molecule_classification
//! ```

use haqjsk::kernels::{GraphKernel, ShortestPathKernel, WeisfeilerLehmanKernel};
use haqjsk::prelude::*;

fn main() {
    // Reduced-scale MUTAG stand-in (about 1/4 of the graphs) so the example
    // finishes in seconds; raise the divisor arguments for the full scale.
    let dataset = generate_by_name("MUTAG", 4, 1, 7).expect("MUTAG is a known dataset");
    println!(
        "dataset {}: {} graphs, {} classes, mean |V| = {:.1}",
        dataset.name,
        dataset.len(),
        dataset.num_classes(),
        dataset.spec.mean_vertices
    );

    let cv_config = CrossValidationConfig::quick();
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 32,
        layer_cap: 4,
        ..HaqjskConfig::small()
    };

    // HAQJSK, both variants.
    for variant in [
        HaqjskVariant::AlignedAdjacency,
        HaqjskVariant::AlignedDensity,
    ] {
        let model = HaqjskModel::fit(&dataset.graphs, config.clone(), variant)
            .expect("dataset is non-empty");
        let gram = model
            .gram_matrix(&dataset.graphs)
            .expect("valid graphs")
            .normalized();
        let cv = cross_validate_kernel(&gram, &dataset.classes, &cv_config);
        println!("{:<22} accuracy: {}", variant.label(), cv.summary);
    }

    // Classical baselines.
    let wl = WeisfeilerLehmanKernel::new(3);
    let wl_gram = wl.gram_matrix(&dataset.graphs).normalized();
    let wl_cv = cross_validate_kernel(&wl_gram, &dataset.classes, &cv_config);
    println!("{:<22} accuracy: {}", wl.name(), wl_cv.summary);

    let sp = ShortestPathKernel::new();
    let sp_gram = sp.gram_matrix(&dataset.graphs).normalized();
    let sp_cv = cross_validate_kernel(&sp_gram, &dataset.classes, &cv_config);
    println!("{:<22} accuracy: {}", sp.name(), sp_cv.summary);

    println!("\n(The synthetic stand-in is easier than the real MUTAG; what matters is the ordering of the kernels.)");
}
