//! Quickstart: fit a HAQJSK model on a tiny synthetic dataset, inspect the
//! Gram matrix, and run the paper's C-SVM cross-validation protocol.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use haqjsk::prelude::*;

fn main() {
    // 1. A small two-class dataset: cycles ("rings") vs preferential
    //    attachment graphs ("hubs") of varying sizes.
    let mut graphs = Vec::new();
    let mut classes = Vec::new();
    for i in 0..12 {
        graphs.push(haqjsk::graph::generators::cycle_graph(8 + i % 4));
        classes.push(0usize);
        graphs.push(haqjsk::graph::generators::barabasi_albert(
            8 + i % 4,
            2,
            i as u64,
        ));
        classes.push(1usize);
    }
    println!("dataset: {} graphs, 2 classes", graphs.len());

    // 2. Fit the HAQJSK(A) kernel: learn hierarchical prototypes from the
    //    dataset, then compute the Gram matrix.
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 16,
        layer_cap: 4,
        ..HaqjskConfig::small()
    };
    let model = HaqjskModel::fit(&graphs, config, HaqjskVariant::AlignedAdjacency)
        .expect("dataset is non-empty");
    let gram = model.gram_matrix(&graphs).expect("all graphs are valid");

    println!(
        "HAQJSK(A) Gram matrix: {}x{}, min eigenvalue {:+.3e} (positive semidefinite: {})",
        gram.len(),
        gram.len(),
        gram.min_eigenvalue().unwrap(),
        gram.is_positive_semidefinite(1e-7).unwrap()
    );
    println!(
        "sample kernel values: same-class k(0,2) = {:.4}, cross-class k(0,1) = {:.4}",
        gram.get(0, 2),
        gram.get(0, 1)
    );

    // 3. The paper's evaluation protocol: C-SVM + stratified cross-validation.
    let cv = cross_validate_kernel(&gram, &classes, &CrossValidationConfig::quick());
    println!("10-fold-style CV accuracy: {}", cv.summary);

    // 4. Compare against the unaligned QJSK baseline on the same data.
    let baseline = haqjsk::kernels::QjskUnaligned::default();
    let baseline_gram = baseline.gram_matrix(&graphs);
    let baseline_cv =
        cross_validate_kernel(&baseline_gram, &classes, &CrossValidationConfig::quick());
    println!("unaligned QJSK baseline accuracy: {}", baseline_cv.summary);
}
