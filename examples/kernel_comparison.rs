//! Side-by-side comparison of every kernel in the workspace on one dataset,
//! including the positive-semidefiniteness check that backs the paper's
//! central theoretical claim (HAQJSK is PD, plain QJSK is not guaranteed to
//! be).
//!
//! Run with:
//! ```text
//! cargo run --release --example kernel_comparison
//! ```

use haqjsk::kernels::{
    DepthBasedAlignedKernel, GraphKernel, GraphletKernel, JensenTsallisKernel, QjskAligned,
    QjskUnaligned, RandomWalkKernel, ShortestPathKernel, WeisfeilerLehmanKernel,
};
use haqjsk::prelude::*;

fn main() {
    let dataset = generate_by_name("PTC(MR)", 10, 1, 5).expect("PTC(MR) is a known dataset");
    println!(
        "dataset {}: {} graphs, {} classes\n",
        dataset.name,
        dataset.len(),
        dataset.num_classes()
    );
    let cv_config = CrossValidationConfig::quick();

    println!(
        "{:<26} {:>14} {:>16} {:>8}",
        "kernel", "accuracy (%)", "min eigenvalue", "PSD"
    );

    // The HAQJSK kernels.
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 24,
        layer_cap: 4,
        ..HaqjskConfig::small()
    };
    for variant in [
        HaqjskVariant::AlignedAdjacency,
        HaqjskVariant::AlignedDensity,
    ] {
        let model = HaqjskModel::fit(&dataset.graphs, config.clone(), variant)
            .expect("dataset is non-empty");
        let gram = model.gram_matrix(&dataset.graphs).expect("valid graphs");
        report(variant.label(), &gram, &dataset.classes, &cv_config);
    }

    // The baseline kernels.
    let baselines: Vec<Box<dyn GraphKernel>> = vec![
        Box::new(QjskUnaligned::default()),
        Box::new(QjskAligned::default()),
        Box::new(WeisfeilerLehmanKernel::new(3)),
        Box::new(ShortestPathKernel::new()),
        Box::new(GraphletKernel::three_only()),
        Box::new(RandomWalkKernel::default()),
        Box::new(JensenTsallisKernel::default()),
        Box::new(DepthBasedAlignedKernel::default()),
    ];
    for kernel in &baselines {
        let gram = kernel.gram_matrix(&dataset.graphs);
        report(kernel.name(), &gram, &dataset.classes, &cv_config);
    }
}

fn report(name: &str, gram: &KernelMatrix, classes: &[usize], cv_config: &CrossValidationConfig) {
    let normalized = gram.normalized();
    // Indefinite kernels are clipped to the PSD cone before the SVM, exactly
    // as one must do in practice.
    let for_svm = normalized.project_psd().expect("projection succeeds");
    let cv = cross_validate_kernel(&for_svm, classes, cv_config);
    let min_eig = normalized.min_eigenvalue().unwrap();
    println!(
        "{:<26} {:>14} {:>16.3e} {:>8}",
        name,
        format!("{}", cv.summary),
        min_eig,
        if normalized.is_positive_semidefinite(1e-7).unwrap() {
            "yes"
        } else {
            "NO"
        }
    );
}
