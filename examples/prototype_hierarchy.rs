//! Reproduction of the paper's Fig. 2: hierarchically applying κ-means to
//! vertex representations to build coarser and coarser prototype sets.
//!
//! The paper's figure shows five graphs whose 2-dimensional vertex
//! representations are clustered into 1-level, 2-level and 3-level prototype
//! representations. This example builds the same construction on five small
//! graphs and prints the prototype counts and centroids per level, as well as
//! how many vertices of each graph map to each 1-level prototype.
//!
//! Run with:
//! ```text
//! cargo run --release --example prototype_hierarchy
//! ```

use haqjsk::core::correspondence::GraphCorrespondences;
use haqjsk::core::db_representation::DbRepresentations;
use haqjsk::core::{HaqjskConfig, PrototypeHierarchy};
use haqjsk::graph::generators::{barabasi_albert, cycle_graph, path_graph, star_graph};

fn main() {
    // Five graphs, as in Fig. 2.
    let graphs = vec![
        path_graph(8),
        cycle_graph(9),
        star_graph(8),
        barabasi_albert(10, 2, 1),
        barabasi_albert(12, 3, 2),
    ];
    println!(
        "five graphs with sizes: {:?}",
        graphs.iter().map(|g| g.num_vertices()).collect::<Vec<_>>()
    );

    // 2-dimensional depth-based vertex representations (k = 2), as in the
    // figure's "original vertex representations in a two-dimensional
    // Euclidean space".
    let representations = DbRepresentations::compute(&graphs, 2);
    println!(
        "0-level prototype representations: {} vertex points in R^2",
        representations.total_vertices()
    );

    // Hierarchy with H = 3 levels, shrinking the prototype count per level.
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 12,
        level_shrink: 0.5,
        max_layers: Some(2),
        ..HaqjskConfig::small()
    };
    let hierarchy = PrototypeHierarchy::build(&representations, &config);

    for h in 1..=hierarchy.num_levels() {
        let prototypes = hierarchy.layer(2).prototypes(h);
        println!(
            "\n{h}-level prototype representations ({} points):",
            prototypes.len()
        );
        for (i, p) in prototypes.iter().enumerate() {
            println!("  μ_{i} = ({:.3}, {:.3})", p[0], p[1]);
        }
    }

    // Correspondence of each graph's vertices to the 1-level prototypes.
    println!("\nvertex-to-prototype assignment counts (1-level, k = 2):");
    for (gi, graph) in graphs.iter().enumerate() {
        let corr = GraphCorrespondences::compute(&representations, gi, &hierarchy);
        let c = corr.at(1, 2);
        let mut counts = vec![0usize; c.num_prototypes()];
        for v in 0..graph.num_vertices() {
            counts[c.prototype_of(v)] += 1;
        }
        println!("  graph {gi}: {counts:?}");
    }

    println!("\nVertices of different graphs mapping to the same prototype are transitively aligned — the property that makes the HAQJSK kernels positive definite.");
}
