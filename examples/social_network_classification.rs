//! Social-network graph classification on the IMDB-B stand-in, comparing the
//! HAQJSK kernel + C-SVM against the graph deep-learning stand-ins used for
//! the paper's Table V (a GCN and a WL-feature MLP).
//!
//! Run with:
//! ```text
//! cargo run --release --example social_network_classification
//! ```

use haqjsk::ml::gcn::{GcnClassifier, GcnConfig};
use haqjsk::ml::mlp::{WlMlpClassifier, WlMlpConfig};
use haqjsk::prelude::*;

fn main() {
    // Heavily reduced IMDB-B stand-in (ego-network style graphs, 2 classes).
    let dataset = generate_by_name("IMDB-B", 25, 2, 11).expect("IMDB-B is a known dataset");
    println!(
        "dataset {}: {} graphs, {} classes",
        dataset.name,
        dataset.len(),
        dataset.num_classes()
    );

    // Split into train / test (stratified by taking alternating items, which
    // is valid because the generator interleaves classes).
    let train_idx: Vec<usize> = (0..dataset.len()).filter(|i| i % 4 != 0).collect();
    let test_idx: Vec<usize> = (0..dataset.len()).filter(|i| i % 4 == 0).collect();
    let train_graphs: Vec<Graph> = train_idx
        .iter()
        .map(|&i| dataset.graphs[i].clone())
        .collect();
    let train_labels: Vec<usize> = train_idx.iter().map(|&i| dataset.classes[i]).collect();
    let test_graphs: Vec<Graph> = test_idx
        .iter()
        .map(|&i| dataset.graphs[i].clone())
        .collect();
    let test_labels: Vec<usize> = test_idx.iter().map(|&i| dataset.classes[i]).collect();

    // 1. HAQJSK(D) kernel + cross-validation on the full set (the paper's
    //    protocol).
    let model = HaqjskModel::fit(
        &dataset.graphs,
        HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 24,
            layer_cap: 3,
            ..HaqjskConfig::small()
        },
        HaqjskVariant::AlignedDensity,
    )
    .expect("dataset is non-empty");
    let gram = model
        .gram_matrix(&dataset.graphs)
        .expect("valid graphs")
        .normalized();
    let cv = cross_validate_kernel(&gram, &dataset.classes, &CrossValidationConfig::quick());
    println!("HAQJSK(D) + C-SVM     accuracy: {}", cv.summary);

    // 2. GCN stand-in (message passing, 1-WL bounded) on a train/test split.
    let gcn = GcnClassifier::train(
        &train_graphs,
        &train_labels,
        GcnConfig {
            hidden_dim: 16,
            epochs: 120,
            ..Default::default()
        },
    );
    println!(
        "GCN (train/test split) accuracy: {:.2} %",
        100.0 * gcn.evaluate(&test_graphs, &test_labels)
    );

    // 3. WL-feature MLP stand-in (deep-graph-kernel style).
    let mlp = WlMlpClassifier::train(
        &train_graphs,
        &train_labels,
        WlMlpConfig {
            hidden_dim: 32,
            epochs: 150,
            ..Default::default()
        },
    );
    println!(
        "WL-MLP (train/test)    accuracy: {:.2} %",
        100.0 * mlp.evaluate(&test_graphs, &test_labels)
    );
}
