//! Kernel-space embedding and nearest-neighbour classification.
//!
//! Beyond the C-SVM protocol of the paper, a graph kernel induces an explicit
//! geometry on a dataset. This example fits the HAQJSK(D) kernel on a
//! three-class dataset, embeds the graphs with kernel PCA, reports how well
//! the two leading components separate the classes, and cross-checks the
//! kernel with a simple kernel k-nearest-neighbour classifier.
//!
//! Run with:
//! ```text
//! cargo run --release --example graph_embedding
//! ```

use haqjsk::kernels::embedding::{kernel_pca, total_positive_variance};
use haqjsk::ml::knn::KernelKnn;
use haqjsk::prelude::*;

fn main() {
    // Three structural classes: rings, hubs and community graphs.
    let mut graphs = Vec::new();
    let mut classes = Vec::new();
    for i in 0..8usize {
        graphs.push(haqjsk::graph::generators::cycle_graph(10 + i % 4));
        classes.push(0usize);
        graphs.push(haqjsk::graph::generators::barabasi_albert(
            10 + i % 4,
            2,
            i as u64,
        ));
        classes.push(1usize);
        graphs.push(haqjsk::graph::generators::stochastic_block_model(
            &[6 + i % 3, 6],
            0.8,
            0.05,
            i as u64,
        ));
        classes.push(2usize);
    }
    println!("dataset: {} graphs, 3 classes", graphs.len());

    let model = HaqjskModel::fit(
        &graphs,
        HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 16,
            layer_cap: 4,
            ..HaqjskConfig::small()
        },
        HaqjskVariant::AlignedDensity,
    )
    .expect("dataset is non-empty");
    let gram = model
        .gram_matrix(&graphs)
        .expect("valid graphs")
        .normalized();

    // Kernel PCA embedding.
    let pca = kernel_pca(&gram, 2).expect("kernel matrix is symmetric");
    let total = total_positive_variance(&gram).expect("kernel matrix is symmetric");
    println!(
        "kernel PCA: {} components capture {:.1}% of the kernel-space variance",
        pca.num_components(),
        100.0 * pca.explained_variance_ratio(total)
    );
    println!("\nper-class centroids in the embedding plane:");
    for class in 0..3usize {
        let members: Vec<&Vec<f64>> = pca
            .coordinates
            .iter()
            .zip(classes.iter())
            .filter(|(_, &c)| c == class)
            .map(|(coords, _)| coords)
            .collect();
        let mean_x: f64 = members.iter().map(|c| c[0]).sum::<f64>() / members.len() as f64;
        let mean_y: f64 = members
            .iter()
            .map(|c| c.get(1).copied().unwrap_or(0.0))
            .sum::<f64>()
            / members.len() as f64;
        println!(
            "  class {class}: ({mean_x:+.4}, {mean_y:+.4})  [{} graphs]",
            members.len()
        );
    }

    // Leave-one-out kernel kNN as a second, SVM-free read of the kernel.
    let n = graphs.len();
    let mut correct = 0usize;
    for test in 0..n {
        let train_idx: Vec<usize> = (0..n).filter(|&i| i != test).collect();
        let train_kernel = gram.select(&train_idx, &train_idx);
        let train_labels: Vec<usize> = train_idx.iter().map(|&i| classes[i]).collect();
        let knn = KernelKnn::fit(&train_kernel, &train_labels, 3);
        let row: Vec<f64> = train_idx.iter().map(|&i| gram.get(test, i)).collect();
        if knn.predict(&row, gram.get(test, test)) == classes[test] {
            correct += 1;
        }
    }
    println!(
        "\nleave-one-out kernel 3-NN accuracy: {:.1}% ({correct}/{n})",
        100.0 * correct as f64 / n as f64
    );
}
