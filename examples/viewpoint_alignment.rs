//! Reproduction of the motivation behind the paper's Fig. 1.
//!
//! Fig. 1 shows two graphs extracted from photographs of the same house taken
//! from different viewpoints: they share an isomorphic triangle motif, but an
//! R-convolution kernel credits that motif regardless of whether the motifs
//! are structurally aligned inside the whole scene. This example constructs
//! exactly that situation — the same "house" motif embedded in two different
//! "background" graphs, plus a third graph whose motif sits in a comparable
//! position — and shows how an R-convolution baseline (the graphlet kernel)
//! and the alignment-aware HAQJSK kernel rank the pairs differently.
//!
//! Run with:
//! ```text
//! cargo run --release --example viewpoint_alignment
//! ```

use haqjsk::graph::Graph;
use haqjsk::kernels::{GraphKernel, GraphletKernel};
use haqjsk::prelude::*;

/// A "scene": a house motif (a 4-cycle with a roof triangle) attached to a
/// background path of the given length at the given attachment point.
fn scene(background_len: usize, attach_at: usize) -> Graph {
    // House motif on vertices 0..5: square 0-1-2-3, roof 3-4-0 triangle.
    let mut g = Graph::new(5 + background_len);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 0)] {
        g.add_edge(u, v).unwrap();
    }
    // Background path 5..5+background_len-1.
    for i in 5..(5 + background_len - 1) {
        g.add_edge(i, i + 1).unwrap();
    }
    // Attach the house to the background.
    g.add_edge(0, 5 + attach_at.min(background_len - 1))
        .unwrap();
    g
}

fn main() {
    // Scene A and scene B: same house, same background length, attached at a
    // similar position → structurally aligned ("same viewpoint family").
    let scene_a = scene(10, 1);
    let scene_b = scene(10, 2);
    // Scene C: same house motif, but buried at the far end of a background of
    // different shape → the motif is not aligned within the global scene.
    let mut scene_c = scene(10, 9);
    // Make the background of C bushier so the global structure differs more.
    for i in 0..4 {
        let v = scene_c.add_vertex();
        scene_c.add_edge(6 + i, v).unwrap();
    }

    println!(
        "scene A: {} vertices, {} edges",
        scene_a.num_vertices(),
        scene_a.num_edges()
    );
    println!(
        "scene B: {} vertices, {} edges",
        scene_b.num_vertices(),
        scene_b.num_edges()
    );
    println!(
        "scene C: {} vertices, {} edges",
        scene_c.num_vertices(),
        scene_c.num_edges()
    );

    // R-convolution baseline: normalised graphlet kernel. It sees nearly the
    // same motif histograms in all three scenes.
    let graphlet = GraphletKernel::three_only();
    let g_ab = graphlet.compute(&scene_a, &scene_b);
    let g_ac = graphlet.compute(&scene_a, &scene_c);
    let g_aa = graphlet.compute(&scene_a, &scene_a);
    println!("\nGraphlet (R-convolution) kernel, cosine-normalised:");
    println!("  k(A, B) = {:.4}", g_ab / g_aa);
    println!("  k(A, C) = {:.4}", g_ac / g_aa);

    // Alignment-aware kernel: HAQJSK fitted on the three scenes.
    let graphs = vec![scene_a.clone(), scene_b.clone(), scene_c.clone()];
    let model = HaqjskModel::fit(
        &graphs,
        HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 12,
            layer_cap: 5,
            ..HaqjskConfig::small()
        },
        HaqjskVariant::AlignedAdjacency,
    )
    .expect("three valid scenes");
    let gram = model
        .gram_matrix(&graphs)
        .expect("valid graphs")
        .normalized();
    println!("\nHAQJSK(A) kernel, cosine-normalised:");
    println!("  k(A, B) = {:.4}", gram.get(0, 1));
    println!("  k(A, C) = {:.4}", gram.get(0, 2));

    println!(
        "\nThe aligned kernel separates the aligned pair (A,B) from the unaligned pair (A,C) more strongly: \
         Δ_HAQJSK = {:.4} vs Δ_graphlet = {:.4}",
        gram.get(0, 1) - gram.get(0, 2),
        (g_ab - g_ac) / g_aa
    );
}
