//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — with plain
//! wall-clock timing instead of criterion's statistical machinery. Each
//! benchmark runs a short warm-up, then samples the closure and prints the
//! mean and min iteration time. Good enough to spot order-of-magnitude
//! regressions; swap in real criterion when the environment has crates.io.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value passthrough.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if Instant::now() >= deadline {
                break;
            }
        }
        bencher.report(&id.to_string());
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream criterion emits summary reports here).
    pub fn finish(&mut self) {}
}

/// Times closures; one `iter` call contributes one sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (after a single warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.samples.is_empty() {
            // Warm-up: populate caches and lazy statics outside the timing.
            std_black_box(routine());
        }
        let start = Instant::now();
        std_black_box(routine());
        self.samples.push(start.elapsed());
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        println!(
            "  {id}: mean {mean:?}, min {min:?} over {} samples",
            self.samples.len()
        );
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
