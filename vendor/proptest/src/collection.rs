//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// How many elements a [`vec`] strategy generates: a fixed count or a
/// uniformly drawn one.
#[derive(Debug, Clone)]
pub enum SizeRange {
    /// Exactly this many elements.
    Fixed(usize),
    /// Uniform in `[start, end)`.
    Span(usize, usize),
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Fixed(n)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange::Span(r.start, r.end)
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// described by `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = match self.size {
            SizeRange::Fixed(n) => n,
            SizeRange::Span(lo, hi) => rng.gen_range(lo..hi.max(lo + 1)),
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
