//! Test-runner plumbing: configuration, RNG, and the case-level error type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Property-test configuration (the subset of `ProptestConfig` used here).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was skipped by `prop_assume!`.
    Reject(&'static str),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// The RNG handed to strategies — a thin wrapper over the vendored
/// [`StdRng`] so strategies do not depend on the RNG implementation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
