//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//!   `prop_flat_map` adapters,
//! * range and tuple strategies plus [`collection::vec`],
//! * the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//!   `prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (no `PROPTEST_*` env handling), and
//! failing cases are **not shrunk** — the panic message simply reports the
//! case index so the failure can be replayed.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Derives the deterministic per-test RNG seed.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs `count` property-test cases: each case draws the strategy values and
/// executes the body. A body returning `Err(TestCaseError::Reject)` (from
/// `prop_assume!`) skips that case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::from_seed(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed at case {case}: {msg}");
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..20, x in -2.0f64..2.0, s in 0u64..100) {
            prop_assert!((3..20).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(s < 100);
        }

        #[test]
        fn flat_map_and_vec_compose(v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_map(pair in (1usize..5, 1usize..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&pair));
        }
    }

    #[test]
    fn failing_property_panics() {
        // Expand a failing property by hand and check it reports an Err.
        let mut rng = crate::test_runner::TestRng::from_seed(crate::seed_for("x", 0));
        let v = crate::strategy::Strategy::generate(&(0usize..10), &mut rng);
        let outcome: Result<(), TestCaseError> = (|| {
            prop_assert!(v >= 10, "value {v} is below 10");
            Ok(())
        })();
        assert!(matches!(outcome, Err(TestCaseError::Fail(_))));
    }
}
