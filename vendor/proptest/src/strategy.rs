//! The [`Strategy`] trait and the built-in strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of some type.
///
/// Unlike upstream proptest there is no shrinking: `generate` draws one
/// value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let seed_value = self.base.generate(rng);
        (self.f)(seed_value).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A strategy always producing clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
