//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API subset the workspace actually uses — seedable
//! RNGs, uniform sampling over ranges, and slice shuffling — implemented on
//! xoshiro256\*\* seeded through SplitMix64. The streams differ from upstream
//! `rand`'s ChaCha-based `StdRng`, which is fine: nothing in the workspace
//! asserts exact sampled values, only statistical and determinism properties
//! (the same seed always reproduces the same stream).

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that support uniform sampling.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Rejection-free modulo; the bias is negligible for the span
                // sizes used in this workspace (all far below 2^32).
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            seen_low |= x < 0.4;
            seen_high |= x > 0.6;
        }
        assert!(
            seen_low && seen_high,
            "samples should cover the unit interval"
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&i));
        }
        // Every value of a small discrete range is eventually hit.
        let mut hit = [false; 6];
        for _ in 0..300 {
            hit[rng.gen_range(0usize..6)] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(
            v, original,
            "50 elements virtually never shuffle to identity"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
