//! Concrete RNG implementations.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256\*\* (Blackman & Vigna), seeded
/// via SplitMix64. Fast, tiny, and passes BigCrush — more than adequate for
/// graph generation, κ-means initialisation and fold shuffling.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    fn from_splitmix(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        StdRng { state }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::from_splitmix(seed)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }
}
