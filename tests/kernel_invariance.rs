//! Cross-crate invariance tests: isomorphic graphs must be indistinguishable
//! to every permutation-invariant kernel, and the Nyström approximation must
//! agree with the exact Gram matrix it approximates.

use haqjsk::graph::generators::{barabasi_albert, erdos_renyi, watts_strogatz};
use haqjsk::graph::isomorphism::{are_isomorphic, find_isomorphism, is_valid_isomorphism};
use haqjsk::kernels::nystrom::{LandmarkSelection, NystromApproximation};
use haqjsk::kernels::{GraphKernel, GraphletKernel, ShortestPathKernel, WeisfeilerLehmanKernel};
use haqjsk::prelude::*;

/// Relabelled copies of a graph are isomorphic, and every permutation-
/// invariant kernel gives them identical similarity to any probe graph.
#[test]
fn isomorphic_graphs_are_kernel_indistinguishable() {
    let base = erdos_renyi(10, 0.35, 5);
    let perm: Vec<usize> = vec![7, 2, 9, 0, 4, 6, 1, 8, 3, 5];
    let relabelled = base.permute(&perm).unwrap();

    // Sanity: the isomorphism checker recognises the pair and returns a
    // valid witness mapping.
    assert!(are_isomorphic(&base, &relabelled));
    let mapping = find_isomorphism(&base, &relabelled).unwrap();
    assert!(is_valid_isomorphism(&base, &relabelled, &mapping));

    let probes = [
        barabasi_albert(10, 2, 1),
        watts_strogatz(12, 4, 0.2, 2),
        erdos_renyi(9, 0.3, 11),
    ];
    let kernels: Vec<Box<dyn GraphKernel>> = vec![
        Box::new(WeisfeilerLehmanKernel::new(3)),
        Box::new(ShortestPathKernel::new()),
        Box::new(GraphletKernel::three_only()),
    ];
    for kernel in &kernels {
        for probe in &probes {
            let a = kernel.compute(&base, probe);
            let b = kernel.compute(&relabelled, probe);
            assert!(
                (a - b).abs() < 1e-8,
                "{} distinguishes isomorphic graphs: {a} vs {b}",
                kernel.name()
            );
        }
    }

    // The HAQJSK kernel (fitted on a dataset containing the base graph) also
    // cannot tell the two apart.
    let mut dataset = vec![base.clone()];
    dataset.extend(probes.iter().cloned());
    let model = HaqjskModel::fit(
        &dataset,
        HaqjskConfig {
            hierarchy_levels: 2,
            num_prototypes: 8,
            layer_cap: 3,
            ..HaqjskConfig::small()
        },
        HaqjskVariant::AlignedAdjacency,
    )
    .unwrap();
    for probe in &probes {
        let a = model.kernel_between(&base, probe).unwrap();
        let b = model.kernel_between(&relabelled, probe).unwrap();
        assert!(
            (a - b).abs() < 1e-8,
            "HAQJSK distinguishes isomorphic graphs"
        );
    }
}

/// Structure-changing perturbations are detected both by the isomorphism test
/// and by a drop in normalised kernel similarity.
#[test]
fn perturbed_graphs_are_detectably_different() {
    let base = watts_strogatz(14, 4, 0.1, 3);
    let perturbed = haqjsk::graph::generators::remove_random_edges(&base, 5, 9);
    assert!(!are_isomorphic(&base, &perturbed));
    let wl = WeisfeilerLehmanKernel::new(3);
    let self_sim = wl.compute(&base, &base);
    let cross = wl.compute(&base, &perturbed);
    assert!(cross < self_sim, "perturbation should lower similarity");
}

/// The Nyström approximation of a kernel Gram matrix agrees with the exact
/// matrix when the landmark set is the full dataset, and stays close (and
/// PSD) at reduced rank — the scalability path for the paper's largest
/// corpora.
#[test]
fn nystrom_approximation_tracks_the_exact_gram_matrix() {
    let dataset = generate_by_name("IMDB-B", 40, 2, 19).expect("known dataset");
    // The 3-graphlet kernel factors through a 4-dimensional feature map, so
    // its Gram matrix has rank at most 4 and a handful of landmarks must
    // reconstruct it almost exactly — a sharp correctness check.
    let kernel = GraphletKernel::three_only();
    let exact = kernel.gram_matrix(&dataset.graphs);

    let full_rank = NystromApproximation::fit(
        &kernel,
        &dataset.graphs,
        dataset.len(),
        LandmarkSelection::First,
    )
    .unwrap();
    let reconstructed = full_rank.reconstruct().unwrap();
    let rel = (reconstructed.matrix() - exact.matrix()).max_abs() / exact.matrix().max_abs();
    assert!(
        rel < 1e-6,
        "full-rank Nyström should be exact, rel err {rel}"
    );

    let low_rank = NystromApproximation::fit(
        &kernel,
        &dataset.graphs,
        (dataset.len() / 3).max(6),
        LandmarkSelection::Uniform { seed: 4 },
    )
    .unwrap();
    let approx = low_rank.reconstruct().unwrap();
    assert!(approx.is_positive_semidefinite(1e-6).unwrap());
    let rel_low =
        (approx.matrix() - exact.matrix()).frobenius_norm() / exact.matrix().frobenius_norm();
    assert!(
        rel_low < 0.2,
        "low-rank approximation too far off: {rel_low}"
    );

    // The approximation is still good enough to classify with.
    let cv = cross_validate_kernel(
        &approx.normalized(),
        &dataset.classes,
        &CrossValidationConfig::quick(),
    );
    assert!(
        cv.summary.mean_percent > 60.0,
        "Nyström kernel should keep the class signal: {}",
        cv.summary
    );
}
