//! Acceptance tests of the distributed tile-execution backend, over
//! loopback TCP with in-process workers.
//!
//! * **Byte identity.** A multi-worker distributed Gram must be
//!   byte-identical to the `Serial` backend on the 32-graph acceptance
//!   dataset, for QJSK-unaligned, QJSK-aligned and JTQK.
//! * **Fault tolerance.** Killing a worker mid-Gram (deterministically,
//!   via the `fail_after` chaos knob) must not change a single bit of the
//!   result — surviving workers and the local fallback absorb the loss.
//! * **Dedup shipping.** A second Gram over the same dataset ships zero
//!   graphs.
//!
//! The coordinator slot is process-global, so the tests serialise on one
//! mutex.

use haqjsk::dist::{Coordinator, DistConfig, WorkerOptions, WorkerServer};
use haqjsk::engine::BackendKind;
use haqjsk::graph::generators::{barabasi_albert, cycle_graph, erdos_renyi, star_graph};
use haqjsk::graph::Graph;
use haqjsk::kernels::{GraphKernel, JensenTsallisKernel, QjskAligned, QjskUnaligned};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Serialises tests that install a process-wide coordinator.
fn dist_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// The 32-graph synthetic acceptance dataset (same construction as the
/// engine and tile-batch acceptance tests: mixed families, mixed sizes so
/// zero-padding and dimension-class chunking are exercised).
fn acceptance_dataset() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(5 + i));
        graphs.push(star_graph(5 + i));
        graphs.push(erdos_renyi(6 + i, 0.35, i as u64));
        graphs.push(barabasi_albert(7 + i, 2, 100 + i as u64));
    }
    assert_eq!(graphs.len(), 32);
    graphs
}

fn spawn_workers(count: usize) -> (Vec<WorkerServer>, Vec<String>) {
    let servers: Vec<WorkerServer> = (0..count)
        .map(|_| {
            WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default())
                .expect("bind in-process worker")
        })
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr().to_string()).collect();
    (servers, addrs)
}

fn connect(addrs: &[String]) -> Arc<Coordinator> {
    let config = DistConfig {
        deadline: Duration::from_secs(20),
        ..DistConfig::default()
    };
    Arc::new(Coordinator::connect(addrs, config).expect("connect worker pool"))
}

fn assert_bytes_equal(name: &str, distributed: &[f64], serial: &[f64]) {
    assert_eq!(distributed.len(), serial.len());
    for (k, (a, b)) in distributed.iter().zip(serial).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: entry {k} drifted ({a} vs {b})"
        );
    }
}

#[test]
fn multi_worker_gram_is_byte_identical_to_serial_for_all_quantum_kernels() {
    let _guard = dist_lock().lock().unwrap();
    let graphs = acceptance_dataset();
    let (mut servers, addrs) = spawn_workers(2);
    let coordinator = connect(&addrs);
    haqjsk::dist::set_coordinator(Some(Arc::clone(&coordinator)));

    let kernels: Vec<(&str, &dyn GraphKernel)> = vec![
        ("QJSK (unaligned)", &QjskUnaligned { mu: 1.0 }),
        ("QJSK (aligned)", &QjskAligned { mu: 1.0 }),
        (
            "JTQK",
            &JensenTsallisKernel {
                q: 2.0,
                wl_iterations: 3,
            },
        ),
    ];
    for (name, kernel) in kernels {
        let serial = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
        let distributed = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
        assert_bytes_equal(name, distributed.matrix().data(), serial.matrix().data());
    }

    let stats = coordinator.stats();
    assert_eq!(stats.grams, 3, "every Gram routed through the coordinator");
    assert_eq!(
        stats.local_fallback_grams, 0,
        "healthy workers mean no whole-Gram fallback"
    );
    let completed: usize = stats.workers.iter().map(|w| w.tiles_completed).sum();
    assert!(completed > 0, "workers computed tiles: {stats:?}");
    assert_eq!(
        stats.local_fallback_tiles, 0,
        "healthy workers mean no per-tile fallback: {stats:?}"
    );
    // The dataset shipped once per worker for the first Gram; the two
    // later Grams were pure dedup hits.
    assert_eq!(stats.dataset_keys_total, 3 * 2 * graphs.len());
    assert_eq!(stats.dataset_keys_shipped, 2 * graphs.len());
    assert!(stats.dedup_hit_rate() > 0.6, "{stats:?}");

    haqjsk::dist::set_coordinator(None);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn killing_a_worker_mid_gram_keeps_the_result_byte_identical() {
    let _guard = dist_lock().lock().unwrap();
    let graphs = acceptance_dataset();
    let (mut servers, addrs) = spawn_workers(2);
    let coordinator = connect(&addrs);
    haqjsk::dist::set_coordinator(Some(Arc::clone(&coordinator)));

    // Worker 0 serves two more tiles, then fails and hangs up — a
    // deterministic mid-Gram death.
    coordinator
        .inject_worker_fault(0, 2)
        .expect("arm fault injection");

    let kernel = QjskUnaligned { mu: 1.0 };
    let serial = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
    let distributed = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "QJSK under fault injection",
        distributed.matrix().data(),
        serial.matrix().data(),
    );

    let stats = coordinator.stats();
    // The faulted worker died at least once. It may already be alive again
    // — its server process survived the hangup, so the background
    // probation thread redials and revives it within its backoff — which
    // is exactly the self-healing the elastic pool promises.
    assert!(stats.workers[0].deaths >= 1, "{stats:?}");
    assert!(
        stats.epoch >= 3,
        "the two joins plus the death (and any revival) each bumped the \
         membership epoch: {stats:?}"
    );
    assert!(
        stats.workers[1].tiles_completed > 0,
        "the survivor picked up work: {stats:?}"
    );
    // The dead worker's in-flight tiles were recovered — every tile was
    // eventually committed by the survivor or the local fallback, which the
    // byte-identity assertion above already proves; the counters must show
    // the recovery happened at all.
    assert!(
        stats.workers[0].tiles_dispatched > stats.workers[0].tiles_completed,
        "the dead worker lost in-flight tiles: {stats:?}"
    );

    // The pool recovers for the next Gram: worker 0 reconnects (its
    // fail_after counter is exhausted at 0, so it keeps failing — but
    // worker 1 and the local fallback still complete the Gram).
    let again = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "QJSK after the fault",
        again.matrix().data(),
        serial.matrix().data(),
    );

    haqjsk::dist::set_coordinator(None);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn total_worker_loss_falls_back_to_local_execution() {
    let _guard = dist_lock().lock().unwrap();
    let graphs: Vec<Graph> = acceptance_dataset().into_iter().take(12).collect();
    let (mut servers, addrs) = spawn_workers(1);
    let coordinator = connect(&addrs);
    haqjsk::dist::set_coordinator(Some(Arc::clone(&coordinator)));

    // Kill the only worker before the Gram even starts: every tile request
    // fails immediately.
    coordinator.inject_worker_fault(0, 0).expect("arm fault");

    let kernel = JensenTsallisKernel::default();
    let serial = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
    let distributed = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "JTQK with a dead pool",
        distributed.matrix().data(),
        serial.matrix().data(),
    );
    let stats = coordinator.stats();
    assert!(
        stats.local_fallback_tiles > 0 || stats.local_fallback_grams > 0,
        "the local fallback must have absorbed the loss: {stats:?}"
    );

    haqjsk::dist::set_coordinator(None);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn serving_fit_accepts_workers_and_stats_reports_the_pool() {
    use haqjsk::engine::serve::graph_to_json;
    use haqjsk::engine::Json;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let _guard = dist_lock().lock().unwrap();
    haqjsk::dist::set_coordinator(None);
    let (mut workers, addrs) = spawn_workers(2);

    let mut server = haqjsk::serving::spawn_server("127.0.0.1:0").expect("bind serving");
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut request = |body: String| -> Json {
        writer.write_all(body.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim()).unwrap()
    };

    let graphs: Vec<Json> = acceptance_dataset()
        .iter()
        .take(8)
        .map(graph_to_json)
        .collect();
    let workers_json: Vec<Json> = addrs.iter().map(|a| Json::Str(a.clone())).collect();
    let fit = request(format!(
        r#"{{"cmd":"fit","graphs":{},"workers":{}}}"#,
        Json::Arr(graphs),
        Json::Arr(workers_json)
    ));
    assert_eq!(fit.get("ok").and_then(Json::as_bool), Some(true), "{fit}");
    assert_eq!(fit.get("backend").and_then(Json::as_str), Some("dist"));
    assert_eq!(fit.get("workers").and_then(Json::as_usize), Some(2));

    let stats = request(r#"{"cmd":"stats"}"#.to_string());
    let dist = stats.get("distributed").expect("stats reports the pool");
    let pool_workers = dist.get("workers").and_then(Json::as_array).unwrap();
    assert_eq!(pool_workers.len(), 2);
    for w in pool_workers {
        assert!(w.get("tiles_dispatched").and_then(Json::as_usize).is_some());
        assert!(w.get("bytes_shipped").and_then(Json::as_usize).is_some());
    }
    assert!(dist.get("dedup_hit_rate").and_then(Json::as_f64).is_some());
    // An unreachable worker pool is a loud fit error, not a silent local
    // fit.
    let bad = request(
        r#"{"cmd":"fit","graphs":[{"n":3,"edges":[[0,1],[1,2]]}],"workers":["127.0.0.1:1"]}"#
            .to_string(),
    );
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

    haqjsk::dist::set_coordinator(None);
    server.shutdown();
    for worker in &mut workers {
        worker.shutdown();
    }
}

#[test]
fn model_grams_distribute_via_artifacts_byte_identically() {
    use haqjsk::core::{HaqjskConfig, HaqjskModel, HaqjskVariant};

    let _guard = dist_lock().lock().unwrap();
    let graphs: Vec<Graph> = acceptance_dataset().into_iter().take(16).collect();
    let (mut servers, addrs) = spawn_workers(2);
    let coordinator = connect(&addrs);
    haqjsk::dist::set_coordinator(Some(Arc::clone(&coordinator)));

    let config = HaqjskConfig {
        max_layers: Some(2),
        ..HaqjskConfig::default()
    };
    let model = HaqjskModel::fit(&graphs, config, HaqjskVariant::AlignedAdjacency)
        .expect("fit acceptance model");
    let serial = model
        .gram_matrix_on(&graphs, Some(BackendKind::Serial))
        .expect("serial model gram");
    let distributed = model
        .gram_matrix_on(&graphs, Some(BackendKind::Distributed))
        .expect("distributed model gram");
    assert_bytes_equal(
        "fitted-model Gram",
        distributed.matrix().data(),
        serial.matrix().data(),
    );

    let stats = coordinator.stats();
    assert!(
        stats.artifacts_shipped >= 1,
        "the persisted model travelled as an artifact: {stats:?}"
    );
    let completed: usize = stats.workers.iter().map(|w| w.tiles_completed).sum();
    assert!(completed > 0, "workers evaluated model tiles: {stats:?}");
    assert_eq!(stats.local_fallback_tiles, 0, "{stats:?}");

    // A second Gram over the same model re-ships nothing: the workers
    // already hold the content-addressed artifact.
    let again = model
        .gram_matrix_on(&graphs, Some(BackendKind::Distributed))
        .expect("repeat distributed model gram");
    assert_bytes_equal(
        "repeat fitted-model Gram",
        again.matrix().data(),
        serial.matrix().data(),
    );
    assert_eq!(
        coordinator.stats().artifacts_shipped,
        stats.artifacts_shipped,
        "the repeat Gram was an artifact dedup hit"
    );

    haqjsk::dist::set_coordinator(None);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn workers_join_and_drain_on_a_running_coordinator() {
    let _guard = dist_lock().lock().unwrap();
    let graphs = acceptance_dataset();
    let (mut servers, addrs) = spawn_workers(2);
    let coordinator = connect(&addrs);
    haqjsk::dist::set_coordinator(Some(Arc::clone(&coordinator)));

    let kernel = QjskUnaligned { mu: 1.0 };
    let serial = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
    let first = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "before membership changes",
        first.matrix().data(),
        serial.matrix().data(),
    );
    let epoch_before = coordinator.epoch();

    // Join a third worker mid-run: it must receive the dataset through the
    // ordinary shipping phase of the next Gram, before taking tiles.
    let joiner = WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default()).expect("bind joiner");
    let joiner_addr = joiner.local_addr().to_string();
    servers.push(joiner);
    coordinator.add_worker(&joiner_addr).expect("join worker");
    assert_eq!(coordinator.num_workers(), 3);
    assert!(coordinator.epoch() > epoch_before, "joins bump the epoch");
    // Joining twice is rejected.
    assert!(coordinator.add_worker(&joiner_addr).is_err());

    let second = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "after a join",
        second.matrix().data(),
        serial.matrix().data(),
    );
    let stats = coordinator.stats();
    let joined = stats
        .workers
        .iter()
        .find(|w| w.addr == joiner_addr)
        .expect("joiner in stats");
    assert_eq!(
        joined.datasets_shipped, 1,
        "the joiner received the dataset on its first Gram: {stats:?}"
    );

    // Drain the first worker out; Grams keep working on the remainder.
    let drain_epoch = coordinator.epoch();
    coordinator.remove_worker(&addrs[0]).expect("drain worker");
    assert_eq!(coordinator.num_workers(), 2);
    assert!(coordinator.epoch() > drain_epoch, "drains bump the epoch");
    assert!(coordinator.remove_worker(&addrs[0]).is_err());

    let third = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "after a drain",
        third.matrix().data(),
        serial.matrix().data(),
    );
    assert_eq!(
        coordinator.stats().local_fallback_tiles,
        0,
        "the remaining pool absorbed all tiles"
    );

    haqjsk::dist::set_coordinator(None);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn bounded_worker_stores_recover_evictions_through_reshipping() {
    let _guard = dist_lock().lock().unwrap();
    // Spawn the worker under a budget far below the dataset size: most
    // graphs are evicted whenever the store is idle, so tiles keep hitting
    // store misses that the scheduler must repair by re-shipping.
    std::env::set_var("HAQJSK_WORKER_STORE_BUDGET", "4096");
    let (mut servers, addrs) = spawn_workers(1);
    std::env::remove_var("HAQJSK_WORKER_STORE_BUDGET");

    let coordinator = connect(&addrs);
    haqjsk::dist::set_coordinator(Some(Arc::clone(&coordinator)));

    let graphs: Vec<Graph> = acceptance_dataset().into_iter().take(12).collect();
    let kernel = QjskUnaligned { mu: 1.0 };
    let serial = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
    let distributed = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "QJSK under a starved store",
        distributed.matrix().data(),
        serial.matrix().data(),
    );

    let stats = coordinator.stats();
    assert_eq!(
        stats.workers[0].deaths, 0,
        "evictions are repaired, never treated as deaths: {stats:?}"
    );
    assert_eq!(stats.local_fallback_tiles, 0, "{stats:?}");

    haqjsk::dist::set_coordinator(None);
    for server in &mut servers {
        server.shutdown();
    }
}

#[test]
fn distributed_kind_without_a_coordinator_executes_locally() {
    let _guard = dist_lock().lock().unwrap();
    haqjsk::dist::set_coordinator(None);
    let graphs: Vec<Graph> = acceptance_dataset().into_iter().take(8).collect();
    let kernel = QjskAligned { mu: 1.0 };
    let serial = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
    let local = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    assert_bytes_equal(
        "QJSK-A without coordinator",
        local.matrix().data(),
        serial.matrix().data(),
    );
}
