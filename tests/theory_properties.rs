//! Property-based integration tests of the paper's theoretical claims,
//! exercised across crates on randomly generated datasets.

use haqjsk::core::{HaqjskConfig, HaqjskModel, HaqjskVariant};
use haqjsk::graph::generators::{barabasi_albert, erdos_renyi, random_tree, watts_strogatz};
use haqjsk::graph::Graph;
use haqjsk::kernels::GraphKernel;
use haqjsk::quantum::{ctqw_density_infinite, qjsd_padded, von_neumann_entropy};
use proptest::prelude::*;

/// A mixed bag of random graphs from several generative families.
fn random_dataset(seed: u64, count: usize) -> Vec<Graph> {
    (0..count)
        .map(|i| {
            let s = seed.wrapping_mul(31).wrapping_add(i as u64);
            match i % 4 {
                0 => erdos_renyi(6 + i % 5, 0.35, s),
                1 => barabasi_albert(7 + i % 4, 2, s),
                2 => watts_strogatz(8 + i % 4, 4, 0.2, s),
                _ => random_tree(7 + i % 6, s),
            }
        })
        .collect()
}

fn quick_config() -> HaqjskConfig {
    HaqjskConfig {
        hierarchy_levels: 2,
        num_prototypes: 10,
        layer_cap: 3,
        kmeans_max_iterations: 20,
        ..HaqjskConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Lemma of Sec. III-B: the HAQJSK Gram matrix is positive semidefinite
    /// on arbitrary datasets (checked via its minimum eigenvalue).
    #[test]
    fn haqjsk_gram_is_psd_on_random_datasets(seed in 0u64..200, count in 6usize..10) {
        let graphs = random_dataset(seed, count);
        for variant in [HaqjskVariant::AlignedAdjacency, HaqjskVariant::AlignedDensity] {
            let model = HaqjskModel::fit(&graphs, quick_config(), variant).unwrap();
            let gram = model.gram_matrix(&graphs).unwrap();
            let min_eig = gram.min_eigenvalue().unwrap();
            prop_assert!(
                min_eig > -1e-7 * gram.matrix().max_abs().max(1.0),
                "{}: min eigenvalue {min_eig}",
                variant.label()
            );
        }
    }

    /// HAQJSK kernel values are symmetric, positive, and bounded by the
    /// number of hierarchy levels, with self-similarity attaining the bound.
    #[test]
    fn haqjsk_kernel_bounds(seed in 0u64..200) {
        let graphs = random_dataset(seed, 6);
        let model = HaqjskModel::fit(&graphs, quick_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let bound = model.max_kernel_value();
        for i in 0..graphs.len() {
            let self_sim = model.kernel_between(&graphs[i], &graphs[i]).unwrap();
            prop_assert!((self_sim - bound).abs() < 1e-8);
            for j in (i + 1)..graphs.len() {
                let ij = model.kernel_between(&graphs[i], &graphs[j]).unwrap();
                let ji = model.kernel_between(&graphs[j], &graphs[i]).unwrap();
                prop_assert!((ij - ji).abs() < 1e-8);
                prop_assert!(ij > 0.0);
                prop_assert!(ij <= bound + 1e-8);
            }
        }
    }

    /// The QJSD between CTQW densities of random graphs respects its bounds
    /// and vanishes only on identical states.
    #[test]
    fn qjsd_respects_bounds_across_random_graphs(seed in 0u64..500) {
        let a = erdos_renyi(8, 0.4, seed);
        let b = barabasi_albert(10, 2, seed + 1);
        let rho_a = ctqw_density_infinite(&a).unwrap();
        let rho_b = ctqw_density_infinite(&b).unwrap();
        let d = qjsd_padded(&rho_a, &rho_b).unwrap();
        prop_assert!(d >= 0.0);
        prop_assert!(d <= std::f64::consts::LN_2 + 1e-9);
        let h_a = von_neumann_entropy(&rho_a);
        prop_assert!(h_a >= 0.0);
        prop_assert!(h_a <= (a.num_vertices() as f64).ln() + 1e-9);
    }

    /// Implementing the GraphKernel trait, the fitted model agrees with its
    /// inherent API on random inputs.
    #[test]
    fn trait_and_inherent_api_agree(seed in 0u64..100) {
        let graphs = random_dataset(seed, 5);
        let model = HaqjskModel::fit(&graphs, quick_config(), HaqjskVariant::AlignedDensity).unwrap();
        let via_trait = GraphKernel::compute(&model, &graphs[0], &graphs[1]);
        let direct = model.kernel_between(&graphs[0], &graphs[1]).unwrap();
        prop_assert!((via_trait - direct).abs() < 1e-12);
    }
}
