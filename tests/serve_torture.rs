//! Wire-torture suite for the hardened serving stack: binary garbage,
//! oversized frames, half-written lines, pipelined requests, mid-request
//! disconnects, admission sheds and deadline trips thrown at the
//! production handler over real loopback sockets. The invariants: the
//! process never panics, every answered line is valid JSON in the uniform
//! error envelope, limits fire with the documented error strings, and the
//! corresponding metrics move.

use haqjsk::engine::serve::{graph_to_json, ServeConfig, Server};
use haqjsk::engine::Json;
use haqjsk::graph::generators::{cycle_graph, star_graph};
use haqjsk::graph::Graph;
use haqjsk::serving::{Serving, ServingConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send");
        self.writer.flush().expect("flush");
    }

    /// Reads one response line; `None` on a clean close.
    fn read_response(&mut self) -> Option<Json> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(Json::parse(line.trim()).expect("every answered line is valid JSON")),
            Err(_) => None,
        }
    }

    fn request(&mut self, body: &str) -> Json {
        self.send_raw(body.as_bytes());
        self.send_raw(b"\n");
        self.read_response().expect("response line")
    }
}

/// The uniform error envelope: `ok:false` plus a string `error`.
fn assert_error_envelope(response: &Json) -> String {
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(false),
        "error envelope has ok:false: {response}"
    );
    response
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("error envelope has a string 'error': {response}"))
        .to_string()
}

fn tight_config() -> ServingConfig {
    ServingConfig {
        serve: ServeConfig {
            max_conns: 64,
            max_frame_bytes: 64 * 1024,
            io_timeout: Some(Duration::from_millis(200)),
            tick: Duration::from_millis(10),
        },
        default_deadline: None,
        max_inflight_heavy: 4,
    }
}

fn spawn(config: ServingConfig) -> (Serving, Server) {
    let serving = Serving::new(config);
    let server = serving.spawn("127.0.0.1:0").expect("bind ephemeral port");
    (serving, server)
}

fn small_fit_request() -> String {
    let graphs: Vec<Graph> = (5..9)
        .flat_map(|n| [cycle_graph(n), star_graph(n)])
        .collect();
    let graphs_json = Json::Arr(graphs.iter().map(graph_to_json).collect());
    format!(
        "{{\"cmd\":\"fit\",\"graphs\":{graphs_json},\"variant\":\"A\",\
         \"config\":{{\"hierarchy_levels\":2,\"num_prototypes\":6,\
         \"layer_cap\":2,\"kmeans_max_iterations\":8}}}}"
    )
}

#[test]
fn garbage_and_malformed_lines_get_error_envelopes() {
    let (_serving, mut server) = spawn(tight_config());
    let mut client = Client::connect(server.local_addr());

    // Binary garbage (invalid UTF-8, no JSON structure).
    client.send_raw(&[0xff, 0xfe, 0x00, 0x9b, 0x7f, b'\n']);
    let error = assert_error_envelope(&client.read_response().expect("answered"));
    assert!(error.contains("malformed"), "got: {error}");

    // Structured-looking but invalid JSON.
    client.send_raw(b"{\"cmd\": \n");
    let error = assert_error_envelope(&client.read_response().expect("answered"));
    assert!(error.contains("malformed"), "got: {error}");

    // Valid JSON, meaningless command.
    let response = client.request("{\"cmd\":\"launch_missiles\"}");
    let error = assert_error_envelope(&response);
    assert!(error.contains("unknown command"), "got: {error}");

    // Valid JSON, no command at all.
    let response = client.request("[1,2,3]");
    assert_error_envelope(&response);

    // The connection survived all of it.
    let response = client.request("{\"cmd\":\"ping\"}");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_with_metric_delta() {
    let before = haqjsk::obs::registry()
        .snapshot()
        .counter_value("haqjsk_serve_frames_oversized_total", &[])
        .unwrap_or(0);
    let (_serving, mut server) = spawn(tight_config());
    let mut client = Client::connect(server.local_addr());

    // A frame well past the 64 KiB cap, no newline anywhere.
    let huge = vec![b'a'; 256 * 1024];
    client.send_raw(&huge);
    client.send_raw(b"\n");
    let error = assert_error_envelope(&client.read_response().expect("error line before close"));
    assert!(error.contains("frame too large"), "got: {error}");
    assert!(client.read_response().is_none(), "connection closed");

    let after = haqjsk::obs::registry()
        .snapshot()
        .counter_value("haqjsk_serve_frames_oversized_total", &[])
        .unwrap_or(0);
    assert!(
        after > before,
        "oversized counter moved: {before} -> {after}"
    );
    server.shutdown();
}

#[test]
fn half_written_line_times_out_with_metric_delta() {
    let before = haqjsk::obs::registry()
        .snapshot()
        .counter_value("haqjsk_serve_io_timeouts_total", &[])
        .unwrap_or(0);
    let (_serving, mut server) = spawn(tight_config());
    let mut client = Client::connect(server.local_addr());

    // Half a request, then silence: the slow-loris defense must cut in.
    client.send_raw(b"{\"cmd\":\"pi");
    let error = assert_error_envelope(&client.read_response().expect("timeout error line"));
    assert!(error.contains("timed out"), "got: {error}");
    assert!(client.read_response().is_none(), "connection closed");

    let after = haqjsk::obs::registry()
        .snapshot()
        .counter_value("haqjsk_serve_io_timeouts_total", &[])
        .unwrap_or(0);
    assert!(
        after > before,
        "io-timeout counter moved: {before} -> {after}"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_all_answered_in_order() {
    let (_serving, mut server) = spawn(tight_config());
    let mut client = Client::connect(server.local_addr());

    // A burst of pings and nonsense in one write; every line answered, in
    // order, each one valid JSON.
    let mut burst = String::new();
    for _ in 0..10 {
        burst.push_str("{\"cmd\":\"ping\"}\n");
        burst.push_str("not json at all\n");
    }
    client.send_raw(burst.as_bytes());
    for i in 0..10 {
        let pong = client.read_response().expect("pong line");
        assert_eq!(
            pong.get("pong").and_then(Json::as_bool),
            Some(true),
            "burst item {i}"
        );
        let error = client.read_response().expect("error line");
        assert_error_envelope(&error);
    }
    server.shutdown();
}

#[test]
fn mid_request_disconnects_do_not_wedge_the_server() {
    let (_serving, mut server) = spawn(tight_config());

    // A crowd of clients that hang up at every awkward moment.
    for _ in 0..8 {
        // Partial frame, then vanish.
        let mut c = Client::connect(server.local_addr());
        c.send_raw(b"{\"cmd\":\"st");
        drop(c);
        // Full request, gone before reading the answer.
        let mut c = Client::connect(server.local_addr());
        c.send_raw(b"{\"cmd\":\"stats\"}\n");
        drop(c);
        // Connect and say nothing.
        let c = Client::connect(server.local_addr());
        drop(c);
    }

    // The server still answers, and the connection guards drain back to
    // zero (no leaked threads pinning the gauge).
    let mut client = Client::connect(server.local_addr());
    let response = client.request("{\"cmd\":\"ping\"}");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    drop(client);
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        server.active_connections(),
        0,
        "active connections back to baseline"
    );
    server.shutdown();
}

#[test]
fn admission_control_sheds_heavy_ops_but_cheap_ops_answer() {
    // A zero high-water mark sheds every heavy request deterministically.
    let config = ServingConfig {
        max_inflight_heavy: 0,
        ..tight_config()
    };
    let before = {
        let snapshot = haqjsk::obs::registry().snapshot();
        snapshot
            .family("haqjsk_serve_rejected_total")
            .iter()
            .map(|e| match &e.value {
                haqjsk::obs::MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum::<u64>()
    };
    let (_serving, mut server) = spawn(config);
    let mut client = Client::connect(server.local_addr());

    for cmd in ["fit", "transform", "kernel_row", "append", "predict"] {
        let response = client.request(&format!("{{\"cmd\":\"{cmd}\"}}"));
        let error = assert_error_envelope(&response);
        assert!(error.contains("overloaded"), "{cmd}: {error}");
        assert_eq!(
            response.get("rejected").and_then(Json::as_str),
            Some("overloaded"),
            "{cmd} carries the shed marker"
        );
    }

    // Cheap ops keep answering while everything heavy sheds.
    for cmd in ["ping", "stats", "metrics"] {
        let response = client.request(&format!("{{\"cmd\":\"{cmd}\"}}"));
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "{cmd} stayed available"
        );
    }

    let after = {
        let snapshot = haqjsk::obs::registry().snapshot();
        snapshot
            .family("haqjsk_serve_rejected_total")
            .iter()
            .map(|e| match &e.value {
                haqjsk::obs::MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum::<u64>()
    };
    assert!(
        after >= before + 5,
        "rejected counters moved: {before} -> {after}"
    );
    server.shutdown();
}

#[test]
fn deadline_zero_trips_with_the_distinct_envelope() {
    let (_serving, mut server) = spawn(tight_config());
    let mut client = Client::connect(server.local_addr());

    // Fit something so heavy ops get past the "no model" error.
    let fit = client.request(&small_fit_request());
    assert_eq!(fit.get("ok").and_then(Json::as_bool), Some(true));

    let graph = graph_to_json(&cycle_graph(6));
    let response = client.request(&format!(
        "{{\"cmd\":\"kernel_row\",\"graph\":{graph},\"deadline_ms\":0}}"
    ));
    let error = assert_error_envelope(&response);
    assert!(error.contains("deadline exceeded"), "got: {error}");
    assert_eq!(
        response.get("rejected").and_then(Json::as_str),
        Some("deadline_exceeded")
    );

    // Without the zero deadline the same request succeeds.
    let response = client.request(&format!("{{\"cmd\":\"kernel_row\",\"graph\":{graph}}}"));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));

    // The deadline-exceeded counter moved for the op.
    let count = haqjsk::obs::registry()
        .snapshot()
        .counter_value(
            "haqjsk_serve_deadline_exceeded_total",
            &[("op", "kernel_row")],
        )
        .unwrap_or(0);
    assert!(count >= 1, "deadline counter recorded: {count}");
    server.shutdown();
}

#[test]
fn drain_op_stops_accepts_and_finishes_in_flight() {
    let (serving, mut server) = spawn(tight_config());
    let mut client = Client::connect(server.local_addr());

    assert!(!serving.drain_requested());
    let response = client.request("{\"cmd\":\"drain\"}");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(response.get("draining").and_then(Json::as_bool), Some(true));
    assert!(serving.drain_requested(), "handler observed the drain");

    // The host process would now call Server::drain; emulate it.
    let report = server.drain(Duration::from_secs(5));
    assert!(report.drained, "drain completed: {report:?}");
    assert_eq!(server.active_connections(), 0);
}

#[test]
fn save_file_and_load_file_roundtrip_over_the_wire() {
    let dir = std::env::temp_dir().join(format!("haqjsk-serve-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("served.haqjsk");
    let path_str = path.to_str().unwrap();

    let (_serving, mut server) = spawn(tight_config());
    let mut client = Client::connect(server.local_addr());
    let fit = client.request(&small_fit_request());
    assert_eq!(fit.get("ok").and_then(Json::as_bool), Some(true));

    // Save to disk; the response reports the artifact id of the bytes.
    let response = client.request(&format!(
        "{{\"cmd\":\"save_file\",\"path\":\"{path_str}\"}}"
    ));
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let artifact = response
        .get("artifact_id")
        .and_then(Json::as_str)
        .expect("artifact id")
        .to_string();
    assert_eq!(artifact.len(), 32);

    // In-memory `save` and the file agree on content (the file adds only
    // the checksum footer).
    let save = client.request("{\"cmd\":\"save\"}");
    let text = save.get("model").and_then(Json::as_str).unwrap();
    let on_disk = std::fs::read_to_string(&path).unwrap();
    assert!(on_disk.starts_with(text));
    assert!(on_disk.contains("\nchecksum "));

    // Reload through the wire; the served model answers identically.
    let graph = graph_to_json(&star_graph(6));
    let row_before = client.request(&format!("{{\"cmd\":\"kernel_row\",\"graph\":{graph}}}"));
    let response = client.request(&format!(
        "{{\"cmd\":\"load_file\",\"path\":\"{path_str}\"}}"
    ));
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "load_file: {response}"
    );
    // The restored model has no training graphs (none were sent), so
    // kernel_row yields an empty row — but transform still works and the
    // model text round-trips byte-identically.
    let save_again = client.request("{\"cmd\":\"save\"}");
    assert_eq!(
        save_again.get("model").and_then(Json::as_str),
        Some(text),
        "model text survives the disk roundtrip byte-identically"
    );
    drop(row_before);

    // Corruption detection over the wire: flip a byte, load_file fails.
    let mut bytes = std::fs::read(&path).unwrap();
    let idx = bytes.len() / 3;
    bytes[idx] ^= 0x04;
    std::fs::write(&path, &bytes).unwrap();
    let response = client.request(&format!(
        "{{\"cmd\":\"load_file\",\"path\":\"{path_str}\"}}"
    ));
    let error = assert_error_envelope(&response);
    assert!(
        error.contains("checksum mismatch") || error.contains("parse"),
        "got: {error}"
    );

    // A missing file with a stray .tmp is reported as an interrupted save.
    let crashed = dir.join("crashed.haqjsk");
    std::fs::write(
        haqjsk::core::tmp_sibling(&crashed),
        b"haqjsk-model v1\ntorn",
    )
    .unwrap();
    let crashed_str = crashed.to_str().unwrap();
    let response = client.request(&format!(
        "{{\"cmd\":\"load_file\",\"path\":\"{crashed_str}\"}}"
    ));
    let error = assert_error_envelope(&response);
    assert!(error.contains("interrupted mid-write"), "got: {error}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
