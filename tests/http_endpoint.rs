//! Integration tests of the HTTP observability sidecar mounted on the
//! production serving application, over real loopback sockets.
//!
//! * **Causal tracing acceptance.** A `fit` through a 2-worker distributed
//!   backend must leave one trace — a single `trace` id — linking the
//!   `serve_request` root span, at least one coordinator-side `dist_tile`
//!   span, and at least one worker-side span merged back over the wire
//!   (tagged with its worker's address in `src`), all observable in one
//!   `GET /traces` drain. The same server's `GET /metrics` must survive
//!   the strict exposition parser.
//! * **Abuse battery.** The GET endpoint answers 404 on unknown paths,
//!   serves pipelined requests in order, rejects an oversized request line
//!   with 431 and a stalled header section with 408, and its connection
//!   gauge returns to baseline when the clients go away.
//!
//! The span rings, the flight recorder and the coordinator slot are
//! process-global, so the tests serialise on one mutex.

use haqjsk::dist::{WorkerOptions, WorkerServer};
use haqjsk::engine::serve::{graph_to_json, ServeConfig};
use haqjsk::engine::{HttpResponder, HttpServer, Json};
use haqjsk::graph::generators::{cycle_graph, star_graph};
use haqjsk::obs::parse_exposition;
use haqjsk::serving::{Serving, ServingConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Serialises tests: the trace rings, flight recorder, HTTP connection
/// gauge and coordinator slot are all process-global.
fn global_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// One HTTP/1.1 GET over a fresh connection; returns status and body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to http listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send http request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read http response");
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("malformed status line: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default();
    (status, body)
}

/// JSON-lines wire client against the serving port (same idiom as the
/// serve smoke test).
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn expect_ok(&mut self, body: &str) -> Json {
        self.writer.write_all(body.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        let response = Json::parse(line.trim()).expect("response is valid JSON");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {body} failed: {response}"
        );
        response
    }
}

/// Acceptance: one causal trace spans the serving request, the
/// coordinator's tile dispatches and the workers' merged spans — across
/// the dist wire — and is observable through `GET /traces`.
#[test]
fn one_trace_links_serve_request_to_distributed_worker_spans() {
    let _guard = global_lock().lock().unwrap_or_else(|p| p.into_inner());
    if !haqjsk::obs::trace_enabled() {
        return; // HAQJSK_TRACE=0: nothing to assert.
    }

    let servers: Vec<WorkerServer> = (0..2)
        .map(|_| {
            WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default())
                .expect("bind in-process worker")
        })
        .collect();
    let worker_addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();

    let serving = Serving::new(ServingConfig::from_env().expect("serving config"));
    let server = serving.spawn("127.0.0.1:0").expect("bind serving port");
    let http = serving
        .spawn_http("127.0.0.1:0")
        .expect("bind http sidecar");

    // Start from empty rings so the drain below holds only this test's
    // spans (the rings are process-global).
    let _ = haqjsk::obs::drain_trace_jsonl();

    let mut client = Client::connect(server.local_addr());
    let graphs: Vec<Json> = (5..9)
        .flat_map(|n| {
            [
                graph_to_json(&cycle_graph(n)),
                graph_to_json(&star_graph(n)),
            ]
        })
        .collect();
    let workers_json = Json::Arr(worker_addrs.iter().cloned().map(Json::Str).collect());
    let fitted = client.expect_ok(&format!(
        "{{\"cmd\":\"fit\",\"graphs\":{},\"workers\":{workers_json},\"variant\":\"A\",\
         \"config\":{{\"hierarchy_levels\":2,\"num_prototypes\":8,\"layer_cap\":3,\
         \"kmeans_max_iterations\":15}}}}",
        Json::Arr(graphs)
    ));
    assert_eq!(fitted.get("workers").and_then(Json::as_usize), Some(2));
    assert_eq!(
        fitted.get("workers_unreachable").and_then(Json::as_usize),
        Some(0)
    );

    // The distributed backend really ran: the pool completed tiles.
    let stats = client.expect_ok("{\"cmd\":\"stats\"}");
    let dist = stats.get("distributed").expect("distributed stats present");
    let completed: usize = dist
        .get("workers")
        .and_then(Json::as_array)
        .expect("per-worker stats")
        .iter()
        .map(|w| w.get("tiles_completed").and_then(Json::as_usize).unwrap())
        .sum();
    assert!(completed > 0, "no tiles reached the workers: {dist}");

    // The flight recorder names the fit's trace id.
    let (status, flight) = http_get(http.local_addr(), "/debug/requests");
    assert_eq!(status, 200, "/debug/requests: {flight}");
    let fit_trace = flight
        .lines()
        .filter_map(|line| Json::parse(line).ok())
        .find(|entry| entry.get("op").and_then(Json::as_str) == Some("fit"))
        .and_then(|entry| {
            entry
                .get("trace")
                .and_then(Json::as_str)
                .map(str::to_string)
        })
        .expect("flight recorder holds the fit with its trace id");

    // One /traces drain: the fit's trace must link all three layers.
    let (status, traces) = http_get(http.local_addr(), "/traces");
    assert_eq!(status, 200);
    let meta = Json::parse(traces.lines().next().expect("meta line")).expect("meta parses");
    assert_eq!(meta.get("kind").and_then(Json::as_str), Some("meta"));
    assert_eq!(meta.get("enabled").and_then(Json::as_bool), Some(true));
    let spans: Vec<Json> = traces
        .lines()
        .skip(1)
        .map(|line| Json::parse(line).expect("span line parses"))
        .filter(|span| span.get("trace").and_then(Json::as_str) == Some(&fit_trace))
        .collect();
    let named = |name: &str| {
        spans
            .iter()
            .filter(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .count()
    };
    assert!(
        named("serve_request") >= 1,
        "trace {fit_trace} misses its serving root span: {spans:?}"
    );
    assert!(
        named("dist_tile") >= 1,
        "trace {fit_trace} misses coordinator tile spans: {spans:?}"
    );
    let merged_worker_spans = spans
        .iter()
        .filter(|s| {
            s.get("name").and_then(Json::as_str) == Some("worker_tile")
                && s.get("src")
                    .and_then(Json::as_str)
                    .is_some_and(|src| worker_addrs.iter().any(|a| a == src))
        })
        .count();
    assert!(
        merged_worker_spans >= 1,
        "trace {fit_trace} misses worker spans merged over the wire: {spans:?}"
    );

    // A second drain is empty of this trace (drains consume).
    let (_, again) = http_get(http.local_addr(), "/traces");
    assert!(
        !again.contains(&fit_trace),
        "spans of {fit_trace} survived their drain"
    );

    // The stock-format scrape parses strictly and carries build identity.
    let (status, text) = http_get(http.local_addr(), "/metrics");
    assert_eq!(status, 200);
    let exposition = parse_exposition(&text).expect("http /metrics parses strictly");
    assert!(exposition.has_family("haqjsk_build_info"));
    assert!(exposition.has_family("haqjsk_http_requests_total"));
    assert!(exposition.has_family("haqjsk_serve_requests_total"));

    let (status, body) = http_get(http.local_addr(), "/healthz");
    assert_eq!((status, body.trim()), (200, "ok"));

    haqjsk::dist::set_coordinator(None);
    drop(servers);
    drop(server);
    drop(http);
}

/// Abuse battery against the production routes behind a short-timeout
/// listener: unknown paths, pipelining, an oversized request line, a
/// stalled header section, and the connection gauge's return to baseline.
#[test]
fn http_endpoint_survives_abuse_and_returns_to_baseline() {
    let _guard = global_lock().lock().unwrap_or_else(|p| p.into_inner());

    let serving = Serving::new(ServingConfig::from_env().expect("serving config"));
    let responder: Arc<HttpResponder> = {
        let serving = serving.clone();
        Arc::new(move |path: &str| serving.http_respond(path))
    };
    let config = ServeConfig {
        io_timeout: Some(Duration::from_millis(300)),
        tick: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let http = HttpServer::spawn_with_config("127.0.0.1:0", responder, config)
        .expect("bind http listener");
    let addr = http.local_addr();
    let baseline = http.active_connections();

    // Unknown path: 404, connection stays usable for the next request.
    let (status, body) = http_get(addr, "/definitely/not/a/route");
    assert_eq!(status, 404);
    assert_eq!(body.trim(), "not found");

    // Pipelined GETs in one packet: both answered, in order.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
              GET /debug/requests HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .expect("send pipelined requests");
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .expect("read both responses");
    assert_eq!(raw.matches("HTTP/1.1 200 OK").count(), 2, "{raw:?}");
    let healthz_at = raw.find("ok\n").expect("healthz body present");
    let flight_at = raw.find("\"kind\":\"meta\"").expect("flight body present");
    assert!(healthz_at < flight_at, "responses out of order: {raw:?}");
    drop(stream);

    // Oversized request line: 431 and a close, not a hang or a crash.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    let long_path = "x".repeat(16 << 10);
    stream
        .write_all(format!("GET /{long_path} HTTP/1.1\r\n").as_bytes())
        .expect("send oversized request line");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read 431");
    assert!(raw.starts_with("HTTP/1.1 431 "), "{raw:?}");
    drop(stream);

    // Slow-loris: a request line then silence must 408 within the
    // listener's io timeout, not hold the connection forever.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n")
        .expect("send partial head");
    let stalled = Instant::now();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read 408");
    assert!(raw.starts_with("HTTP/1.1 408 "), "{raw:?}");
    assert!(
        stalled.elapsed() < Duration::from_secs(8),
        "408 took {:?}",
        stalled.elapsed()
    );
    drop(stream);

    // Every abused connection is gone: the gauge returns to baseline.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if http.active_connections() == baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connections never returned to baseline {baseline}: {}",
            http.active_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
