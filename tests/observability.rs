//! Loopback test of the observability surface: the `metrics` op scrapes a
//! valid Prometheus exposition whose serve counters move in lockstep with
//! the requests actually sent, one scrape covers every layer's metric
//! families, handler errors use the uniform `{"ok":false,"error":...}`
//! envelope (and are counted), and `trace_dump` drains well-formed span
//! records.
//!
//! Everything lives in one test function: the metrics registry is
//! process-wide, so concurrent tests in this binary would race the
//! before/after counter deltas.

use haqjsk::engine::serve::graph_to_json;
use haqjsk::engine::Json;
use haqjsk::graph::generators::{cycle_graph, star_graph};
use haqjsk::obs::{parse_exposition, Exposition};
use haqjsk::serving::spawn_server;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, body: &str) -> Json {
        self.writer.write_all(body.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(line.trim()).expect("response is valid JSON")
    }

    fn expect_ok(&mut self, body: &str) -> Json {
        let response = self.request(body);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {body} failed: {response}"
        );
        response
    }
}

/// One `metrics` scrape, validated end to end: the response carries both
/// renderings and the Prometheus text passes the strict parser (TYPE
/// declarations, cumulative histogram buckets, `+Inf` == `_count`).
fn scrape(client: &mut Client) -> Exposition {
    let response = client.expect_ok("{\"cmd\":\"metrics\"}");
    assert!(
        response.get("metrics").is_some(),
        "metrics response missing the structured JSON snapshot"
    );
    let text = response
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("metrics response carries Prometheus text");
    parse_exposition(text).unwrap_or_else(|e| panic!("unparseable exposition: {e}\n{text}"))
}

#[test]
fn metrics_scrape_matches_requests_sent() {
    let server = spawn_server("127.0.0.1:0").expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr());

    // A small fit so the engine and kernel Gram histograms have samples.
    let graphs: Vec<Json> = (5..9)
        .flat_map(|n| {
            [
                graph_to_json(&cycle_graph(n)),
                graph_to_json(&star_graph(n)),
            ]
        })
        .collect();
    client.expect_ok(&format!(
        "{{\"cmd\":\"fit\",\"graphs\":{},\"variant\":\"A\",\"config\":{{\"hierarchy_levels\":2,\
         \"num_prototypes\":8,\"layer_cap\":3,\"kmeans_max_iterations\":15}}}}",
        Json::Arr(graphs)
    ));

    let before = scrape(&mut client);
    let ping_before = before
        .value("haqjsk_serve_requests_total", &[("op", "ping")])
        .unwrap_or(0.0);
    let error_before = before
        .value("haqjsk_serve_errors_total", &[("op", "frobnicate")])
        .unwrap_or(0.0);

    let pings = 5;
    for _ in 0..pings {
        client.expect_ok("{\"cmd\":\"ping\"}");
    }

    // Unknown ops produce the uniform error envelope and count as errors.
    let bad = client.request("{\"cmd\":\"frobnicate\"}");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    let message = bad
        .get("error")
        .and_then(Json::as_str)
        .expect("error responses carry a string 'error' field");
    assert!(
        message.contains("unknown command"),
        "unexpected error message: {message}"
    );

    // Malformed JSON gets the same envelope (and its own op label).
    let worse = client.request("not json at all");
    assert_eq!(worse.get("ok").and_then(Json::as_bool), Some(false));
    assert!(worse.get("error").and_then(Json::as_str).is_some());

    let after = scrape(&mut client);
    let ping_after = after
        .value("haqjsk_serve_requests_total", &[("op", "ping")])
        .expect("ping requests counted");
    assert_eq!(
        (ping_after - ping_before) as u64,
        pings,
        "request counter delta must match the pings sent"
    );
    let error_after = after
        .value("haqjsk_serve_errors_total", &[("op", "frobnicate")])
        .expect("unknown op counted as error");
    assert!(error_after >= error_before + 1.0);
    assert!(
        after
            .value("haqjsk_serve_requests_total", &[("op", "frobnicate")])
            .unwrap_or(0.0)
            >= 1.0
    );
    assert!(
        after
            .value("haqjsk_serve_errors_total", &[("op", "malformed")])
            .unwrap_or(0.0)
            >= 1.0
    );

    // One scrape covers every layer: engine, kernels, caches, eigen-batch,
    // distributed (zeros without a coordinator, but present) and serve.
    for family in [
        "haqjsk_gram_build_seconds",
        "haqjsk_kernel_gram_seconds",
        "haqjsk_cache_hits_total",
        "haqjsk_cache_entries",
        "haqjsk_eigen_batched_calls_total",
        "haqjsk_eigen_simd_path",
        "haqjsk_eigen_simd_calls_total",
        "haqjsk_dist_grams_total",
        "haqjsk_dist_workers",
        "haqjsk_serve_requests_total",
        "haqjsk_serve_request_seconds",
        "haqjsk_serve_errors_total",
        "haqjsk_serve_inflight",
        "haqjsk_pool_jobs_total",
    ] {
        assert!(after.has_family(family), "scrape missing family {family}");
    }

    // `stats` keeps its historical shape while reading the same registry.
    let stats = client.expect_ok("{\"cmd\":\"stats\"}");
    for field in [
        "density_cache_hits",
        "density_cache_misses",
        "spectral_cache_hits",
        "eigen_batched_calls",
        "eigen_mean_batch",
    ] {
        assert!(
            stats.get(field).and_then(Json::as_f64).is_some(),
            "stats missing field {field}"
        );
    }
    // The SIMD dispatch is reported as a path label plus per-path solve
    // counters, matching the registry's info gauge / counter families.
    let simd_path = stats
        .get("eigen_simd_path")
        .and_then(Json::as_str)
        .expect("stats missing eigen_simd_path");
    assert!(
        ["scalar", "avx2", "avx512", "neon"].contains(&simd_path),
        "unexpected eigen_simd_path {simd_path:?}"
    );
    for path in ["scalar", "avx2", "avx512", "neon"] {
        assert!(
            stats
                .get("eigen_simd_calls")
                .and_then(|calls| calls.get(path))
                .and_then(Json::as_f64)
                .is_some(),
            "stats missing eigen_simd_calls.{path}"
        );
    }

    // The span tracer drains as JSON lines (on by default; each served
    // request opened a span).
    let dump = client.expect_ok("{\"cmd\":\"trace_dump\"}");
    assert_eq!(dump.get("enabled").and_then(Json::as_bool), Some(true));
    let spans = dump.get("spans").and_then(Json::as_usize).unwrap();
    assert!(spans > 0, "served requests must have recorded spans");
    let jsonl = dump.get("jsonl").and_then(Json::as_str).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), spans);
    for line in lines {
        let record = Json::parse(line).expect("span record is valid JSON");
        assert!(record.get("name").and_then(Json::as_str).is_some());
        assert!(record.get("start_us").and_then(Json::as_f64).is_some());
        assert!(record.get("dur_us").and_then(Json::as_f64).is_some());
        assert!(record.get("thread").and_then(Json::as_f64).is_some());
    }
}
