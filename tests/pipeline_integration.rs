//! End-to-end integration tests spanning every crate of the workspace:
//! dataset synthesis → kernels → SVM cross-validation, plus the
//! positive-definiteness and permutation-invariance claims of the paper.

use haqjsk::kernels::{GraphKernel, QjskUnaligned, ShortestPathKernel, WeisfeilerLehmanKernel};
use haqjsk::prelude::*;

fn quick_haqjsk_config() -> HaqjskConfig {
    HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 16,
        layer_cap: 3,
        ..HaqjskConfig::small()
    }
}

/// Full pipeline on a synthetic MUTAG stand-in: the HAQJSK kernel must
/// produce a PSD Gram matrix and classify well above chance.
#[test]
fn haqjsk_classifies_mutag_standin_above_chance() {
    let dataset = generate_by_name("MUTAG", 8, 1, 21).expect("known dataset");
    assert!(dataset.len() >= 20);
    let model = HaqjskModel::fit(
        &dataset.graphs,
        quick_haqjsk_config(),
        HaqjskVariant::AlignedAdjacency,
    )
    .expect("fit succeeds");
    let gram = model
        .gram_matrix(&dataset.graphs)
        .expect("gram succeeds")
        .normalized();
    assert!(gram.is_positive_semidefinite(1e-6).unwrap());
    let cv = cross_validate_kernel(&gram, &dataset.classes, &CrossValidationConfig::quick());
    assert!(
        cv.summary.mean_percent > 60.0,
        "HAQJSK accuracy should beat chance clearly: {}",
        cv.summary
    );
}

/// The HAQJSK(D) variant also completes the full pipeline and stays PSD.
#[test]
fn haqjsk_density_variant_full_pipeline() {
    let dataset = generate_by_name("PTC(MR)", 16, 1, 3).expect("known dataset");
    let model = HaqjskModel::fit(
        &dataset.graphs,
        quick_haqjsk_config(),
        HaqjskVariant::AlignedDensity,
    )
    .expect("fit succeeds");
    let gram = model.gram_matrix(&dataset.graphs).expect("gram succeeds");
    assert_eq!(gram.len(), dataset.len());
    assert!(gram.is_positive_semidefinite(1e-6).unwrap());
    let cv = cross_validate_kernel(
        &gram.normalized(),
        &dataset.classes,
        &CrossValidationConfig::quick(),
    );
    assert!(cv.summary.mean_percent > 50.0, "{}", cv.summary);
}

/// Baseline kernels run on the same dataset through the same harness.
#[test]
fn baseline_kernels_run_through_the_same_protocol() {
    let dataset = generate_by_name("IMDB-B", 60, 2, 9).expect("known dataset");
    let kernels: Vec<Box<dyn GraphKernel>> = vec![
        Box::new(WeisfeilerLehmanKernel::new(2)),
        Box::new(ShortestPathKernel::new()),
        Box::new(QjskUnaligned::default()),
    ];
    for kernel in &kernels {
        let gram = kernel.gram_matrix(&dataset.graphs).normalized();
        let psd = gram.project_psd().expect("projection succeeds");
        let cv = cross_validate_kernel(&psd, &dataset.classes, &CrossValidationConfig::quick());
        assert!(
            cv.summary.mean_percent >= 30.0,
            "{} collapsed: {}",
            kernel.name(),
            cv.summary
        );
    }
}

/// The paper's key structural claim, checked end to end: relabelling the
/// vertices of a graph changes neither its HAQJSK kernel row nor the
/// resulting classification.
#[test]
fn haqjsk_is_permutation_invariant_end_to_end() {
    let dataset = generate_by_name("MUTAG", 16, 1, 33).expect("known dataset");
    let model = HaqjskModel::fit(
        &dataset.graphs,
        quick_haqjsk_config(),
        HaqjskVariant::AlignedAdjacency,
    )
    .expect("fit succeeds");

    let target = &dataset.graphs[0];
    let n = target.num_vertices();
    let perm: Vec<usize> = (0..n).rev().collect();
    let relabelled = target.permute(&perm).expect("valid permutation");

    for other in dataset.graphs.iter().take(8) {
        let original = model.kernel_between(target, other).expect("kernel works");
        let after = model
            .kernel_between(&relabelled, other)
            .expect("kernel works");
        assert!(
            (original - after).abs() < 1e-8,
            "kernel value moved under relabelling: {original} vs {after}"
        );
    }
}

/// The unaligned QJSK baseline, by contrast, is *not* permutation invariant —
/// the deficiency the paper sets out to fix.
#[test]
fn unaligned_qjsk_is_not_permutation_invariant() {
    let dataset = generate_by_name("MUTAG", 16, 1, 13).expect("known dataset");
    let kernel = QjskUnaligned::default();
    let target = &dataset.graphs[0];
    let n = target.num_vertices();
    let perm: Vec<usize> = (0..n).rev().collect();
    let relabelled = target.permute(&perm).expect("valid permutation");
    // Self-similarity with the relabelled copy should drop below 1 for at
    // least one graph in the dataset (generic graphs have no automorphism
    // mapping the reversal).
    let self_sim = kernel.compute(target, target);
    let cross_sim = kernel.compute(target, &relabelled);
    assert!((self_sim - 1.0).abs() < 1e-9);
    assert!(
        cross_sim < self_sim - 1e-9,
        "expected the unaligned kernel to notice the relabelling"
    );
}

/// Serialisation round-trip of a generated dataset through the text format.
#[test]
fn dataset_io_roundtrip() {
    let dataset = generate_by_name("BAR31", 20, 4, 2).expect("known dataset");
    let text = haqjsk::graph::io::dataset_to_string(&dataset.graphs, &dataset.classes)
        .expect("serialisation succeeds");
    let (graphs, classes) = haqjsk::graph::io::dataset_from_string(&text).expect("parse succeeds");
    assert_eq!(graphs, dataset.graphs);
    assert_eq!(classes, dataset.classes);
}

/// Out-of-sample usage: fit on one portion of a dataset, evaluate kernels
/// against graphs the model has never seen.
#[test]
fn out_of_sample_kernel_evaluation() {
    let dataset = generate_by_name("GEOD31", 20, 3, 17).expect("known dataset");
    let split = dataset.len() / 2;
    let train = &dataset.graphs[..split];
    let test = &dataset.graphs[split..];
    let model = HaqjskModel::fit(train, quick_haqjsk_config(), HaqjskVariant::AlignedDensity)
        .expect("fit succeeds");
    for unseen in test.iter().take(5) {
        let v = model
            .kernel_between(unseen, &train[0])
            .expect("kernel evaluates for unseen graphs");
        assert!(v > 0.0);
        assert!(v <= model.max_kernel_value() + 1e-9);
    }
}
