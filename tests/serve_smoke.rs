//! Loopback smoke test of the `haqjsk-serve` stack: the production handler
//! (`haqjsk::serving`) behind the engine's JSON-lines TCP server, driven by
//! a real client socket.

use haqjsk::engine::serve::graph_to_json;
use haqjsk::engine::Json;
use haqjsk::graph::generators::{cycle_graph, star_graph};
use haqjsk::graph::Graph;
use haqjsk::serving::spawn_server;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to loopback server");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, body: &str) -> Json {
        self.writer.write_all(body.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        Json::parse(line.trim()).expect("response is valid JSON")
    }

    fn expect_ok(&mut self, body: &str) -> Json {
        let response = self.request(body);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {body} failed: {response}"
        );
        response
    }
}

fn training_set() -> (Vec<Graph>, Vec<usize>) {
    // Two visually distinct classes: cycles (label 0) and stars (label 1).
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for n in 5..9 {
        graphs.push(cycle_graph(n));
        labels.push(0);
        graphs.push(star_graph(n));
        labels.push(1);
    }
    (graphs, labels)
}

fn fit_request(graphs: &[Graph], labels: &[usize]) -> String {
    let graphs_json = Json::Arr(graphs.iter().map(graph_to_json).collect());
    let labels_json = Json::Arr(labels.iter().map(|&l| Json::Num(l as f64)).collect());
    format!(
        "{{\"cmd\":\"fit\",\"graphs\":{graphs_json},\"labels\":{labels_json},\
         \"variant\":\"A\",\"config\":{{\"hierarchy_levels\":2,\"num_prototypes\":8,\
         \"layer_cap\":3,\"kmeans_max_iterations\":15}}}}"
    )
}

#[test]
fn full_protocol_over_loopback() {
    let server = spawn_server("127.0.0.1:0").expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr());

    // Liveness, and a clean error before any model exists.
    let pong = client.expect_ok("{\"cmd\":\"ping\"}");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    let early = client.request("{\"cmd\":\"predict\",\"graph\":{\"n\":2,\"edges\":[[0,1]]}}");
    assert_eq!(early.get("ok").and_then(Json::as_bool), Some(false));

    // Fit on the cycle/star training set.
    let (graphs, labels) = training_set();
    let fitted = client.expect_ok(&fit_request(&graphs, &labels));
    assert_eq!(
        fitted.get("num_graphs").and_then(Json::as_usize),
        Some(graphs.len())
    );
    let levels = fitted.get("levels").and_then(Json::as_usize).unwrap();
    assert!(levels >= 1);

    // Transform an unseen graph: one entropy per hierarchy level.
    let unseen_cycle = graph_to_json(&cycle_graph(9));
    let transformed = client.expect_ok(&format!(
        "{{\"cmd\":\"transform\",\"graph\":{unseen_cycle}}}"
    ));
    let entropies = transformed
        .get("entropies")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(entropies.len(), levels);
    assert!(entropies.iter().all(|e| e.as_f64().unwrap().is_finite()));

    // Kernel row against the training set, served via incremental extension.
    let row = client.expect_ok(&format!(
        "{{\"cmd\":\"kernel_row\",\"graph\":{unseen_cycle}}}"
    ));
    let values = row.get("values").and_then(Json::as_array).unwrap();
    assert_eq!(values.len(), graphs.len());
    let numeric: Vec<f64> = values.iter().map(|v| v.as_f64().unwrap()).collect();
    assert!(numeric.iter().all(|v| v.is_finite() && *v > 0.0));

    // An unseen cycle should be classified as a cycle, an unseen star as a
    // star (1-NN over the kernel row).
    let predicted = client.expect_ok(&format!("{{\"cmd\":\"predict\",\"graph\":{unseen_cycle}}}"));
    assert_eq!(predicted.get("label").and_then(Json::as_usize), Some(0));
    let unseen_star = graph_to_json(&star_graph(9));
    let predicted = client.expect_ok(&format!("{{\"cmd\":\"predict\",\"graph\":{unseen_star}}}"));
    assert_eq!(predicted.get("label").and_then(Json::as_usize), Some(1));

    // Append a labelled graph, growing the served set.
    let appended = client.expect_ok(&format!(
        "{{\"cmd\":\"append\",\"graph\":{unseen_star},\"label\":1}}"
    ));
    assert_eq!(
        appended.get("num_graphs").and_then(Json::as_usize),
        Some(graphs.len() + 1)
    );
    let row = client.expect_ok(&format!(
        "{{\"cmd\":\"kernel_row\",\"graph\":{unseen_cycle}}}"
    ));
    assert_eq!(
        row.get("values").and_then(Json::as_array).unwrap().len(),
        graphs.len() + 1
    );

    // Persistence round-trip: save, load into a fresh state, predict again.
    let saved = client.expect_ok("{\"cmd\":\"save\"}");
    let model_text = saved
        .get("model")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert!(model_text.starts_with("haqjsk-model v1"));
    let graphs_json = Json::Arr(graphs.iter().map(graph_to_json).collect());
    let labels_json = Json::Arr(labels.iter().map(|&l| Json::Num(l as f64)).collect());
    let model_json = Json::Str(model_text);
    client.expect_ok(&format!(
        "{{\"cmd\":\"load\",\"model\":{model_json},\"graphs\":{graphs_json},\"labels\":{labels_json}}}"
    ));
    let predicted = client.expect_ok(&format!("{{\"cmd\":\"predict\",\"graph\":{unseen_cycle}}}"));
    assert_eq!(predicted.get("label").and_then(Json::as_usize), Some(0));

    // Stats report the engine and the per-model feature cache.
    let stats = client.expect_ok("{\"cmd\":\"stats\"}");
    assert_eq!(stats.get("fitted").and_then(Json::as_bool), Some(true));
    assert!(
        stats
            .get("engine_threads")
            .and_then(Json::as_usize)
            .unwrap()
            >= 1
    );
    assert!(
        stats
            .get("aligned_cache_entries")
            .and_then(Json::as_usize)
            .unwrap()
            >= graphs.len()
    );

    // Unknown commands and malformed JSON produce error responses, not
    // dropped connections.
    let bad = client.request("{\"cmd\":\"frobnicate\"}");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    let worse = client.request("not json at all");
    assert_eq!(worse.get("ok").and_then(Json::as_bool), Some(false));

    // A second concurrent client sees the same model.
    let mut second = Client::connect(server.local_addr());
    let stats = second.expect_ok("{\"cmd\":\"stats\"}");
    assert_eq!(stats.get("fitted").and_then(Json::as_bool), Some(true));
}

/// Acceptance: a serving process with a finite aligned-cache budget
/// completes a stream of more distinct graphs than the budget can hold,
/// with residency bounded and the overflow observable through the
/// per-shard eviction counters in `stats`.
#[test]
fn budgeted_cache_bounds_residency_over_a_distinct_graph_stream() {
    use haqjsk::graph::generators::erdos_renyi;

    let server = spawn_server("127.0.0.1:0").expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr());

    let (graphs, labels) = training_set();
    let graphs_json = Json::Arr(graphs.iter().map(graph_to_json).collect());
    let labels_json = Json::Arr(labels.iter().map(|&l| Json::Num(l as f64)).collect());
    let budget = 6000usize;
    let shards = 2usize;
    client.expect_ok(&format!(
        "{{\"cmd\":\"fit\",\"graphs\":{graphs_json},\"labels\":{labels_json},\
         \"variant\":\"A\",\"config\":{{\"hierarchy_levels\":2,\"num_prototypes\":8,\
         \"layer_cap\":3,\"kmeans_max_iterations\":15,\
         \"cache_shards\":{shards},\"cache_budget_bytes\":{budget}}}}}"
    ));

    // Stream distinct never-repeating graphs — far more than the budget
    // can keep resident.
    let streamed = 24;
    for i in 0..streamed {
        let g = erdos_renyi(6 + i % 6, 0.35, 7000 + i as u64);
        let wire = graph_to_json(&g);
        let response = client.expect_ok(&format!("{{\"cmd\":\"transform\",\"graph\":{wire}}}"));
        assert!(response.get("levels").and_then(Json::as_usize).unwrap() >= 1);
    }

    let stats = client.expect_ok("{\"cmd\":\"stats\"}");
    assert_eq!(stats.get("fitted").and_then(Json::as_bool), Some(true));
    let backend = stats.get("engine_backend").and_then(Json::as_str).unwrap();
    assert!(["serial", "tiled", "batched"].contains(&backend));

    let entries = stats
        .get("aligned_cache_entries")
        .and_then(Json::as_usize)
        .unwrap();
    let evictions = stats
        .get("aligned_cache_evictions")
        .and_then(Json::as_usize)
        .unwrap();
    let resident = stats
        .get("aligned_cache_resident_bytes")
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(
        stats
            .get("aligned_cache_budget_bytes")
            .and_then(Json::as_usize),
        Some(budget)
    );
    assert!(
        evictions > 0,
        "streaming {streamed} distinct graphs through a {budget}-byte budget must evict"
    );
    assert!(
        resident <= budget,
        "residency {resident} exceeds the budget"
    );
    assert!(
        entries < graphs.len() + streamed,
        "every distinct graph resident: the budget did nothing"
    );

    // Per-shard counters decompose the aggregates and respect the
    // per-shard budget slice.
    let shard_stats = stats
        .get("aligned_cache_shards")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(shard_stats.len(), shards);
    let mut entry_sum = 0;
    let mut eviction_sum = 0;
    for shard in shard_stats {
        let shard_entries = shard.get("entries").and_then(Json::as_usize).unwrap();
        let shard_resident = shard
            .get("resident_bytes")
            .and_then(Json::as_usize)
            .unwrap();
        let shard_budget = shard.get("budget_bytes").and_then(Json::as_usize).unwrap();
        assert_eq!(shard_budget, budget / shards);
        assert!(shard_resident <= shard_budget);
        entry_sum += shard_entries;
        eviction_sum += shard.get("evictions").and_then(Json::as_usize).unwrap();
    }
    assert_eq!(entry_sum, entries);
    assert_eq!(eviction_sum, evictions);

    // The density cache reports its shards too (environment-configured).
    assert!(stats
        .get("density_cache_shards")
        .and_then(Json::as_array)
        .is_some());

    // The stream left the server fully operational.
    let unseen = graph_to_json(&cycle_graph(10));
    let predicted = client.expect_ok(&format!("{{\"cmd\":\"predict\",\"graph\":{unseen}}}"));
    assert_eq!(predicted.get("label").and_then(Json::as_usize), Some(0));
}
