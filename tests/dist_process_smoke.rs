//! Distributed smoke test against **real worker processes**: spawns two
//! `haqjsk-worker` binaries on ephemeral loopback ports, fans a Gram out
//! over them, and checks byte identity against the serial backend — then
//! kills one process outright and checks the pool still answers.
//!
//! Marked `#[ignore]` so the default `cargo test` stays hermetic and fast;
//! CI runs it explicitly (release build) with
//! `cargo test --release --test dist_process_smoke -- --ignored`.

use haqjsk::dist::{Coordinator, DistConfig};
use haqjsk::engine::BackendKind;
use haqjsk::graph::generators::{cycle_graph, erdos_renyi, star_graph};
use haqjsk::graph::Graph;
use haqjsk::kernels::{GraphKernel, QjskUnaligned};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

struct WorkerProcess {
    child: Child,
    addr: String,
}

impl WorkerProcess {
    /// Spawns the worker binary on an ephemeral port and parses the bound
    /// address from its first stdout line.
    fn spawn(threads: usize) -> WorkerProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_haqjsk-worker"))
            .arg("127.0.0.1:0")
            .env("HAQJSK_THREADS", threads.to_string())
            // The child must not try to join a distributed pool itself.
            .env_remove("HAQJSK_BACKEND")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn haqjsk-worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read worker banner");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("banner ends with the address")
            .to_string();
        assert!(addr.contains(':'), "unexpected worker banner: {line:?}");
        WorkerProcess { child, addr }
    }
}

impl Drop for WorkerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn dataset() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(5 + i));
        graphs.push(star_graph(5 + i));
        graphs.push(erdos_renyi(6 + i, 0.35, i as u64));
        graphs.push(erdos_renyi(8 + i, 0.25, 50 + i as u64));
    }
    graphs
}

#[test]
#[ignore = "spawns worker processes; run explicitly (CI does, in release)"]
fn two_worker_processes_compute_byte_identical_grams_and_survive_a_kill() {
    let workers = [WorkerProcess::spawn(2), WorkerProcess::spawn(2)];
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let config = DistConfig {
        deadline: Duration::from_secs(30),
        ..DistConfig::default()
    };
    let coordinator =
        Arc::new(Coordinator::connect(&addrs, config).expect("connect to worker processes"));
    haqjsk::dist::set_coordinator(Some(Arc::clone(&coordinator)));

    let graphs = dataset();
    let kernel = QjskUnaligned { mu: 1.0 };
    let serial = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
    let distributed = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    for (k, (a, b)) in distributed
        .matrix()
        .data()
        .iter()
        .zip(serial.matrix().data())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "entry {k} drifted ({a} vs {b})");
    }
    let stats = coordinator.stats();
    let completed: usize = stats.workers.iter().map(|w| w.tiles_completed).sum();
    assert!(completed > 0, "worker processes computed tiles: {stats:?}");
    assert!(
        stats.workers.iter().all(|w| w.tiles_completed > 0),
        "both processes participated: {stats:?}"
    );

    // Kill one process outright; the next Gram must still be byte-exact
    // (survivor + local fallback) and must not hang.
    let mut workers = workers;
    workers[0].child.kill().expect("kill worker process");
    workers[0].child.wait().expect("reap worker process");
    let after_kill = kernel.gram_matrix_on(&graphs, Some(BackendKind::Distributed));
    for (a, b) in after_kill
        .matrix()
        .data()
        .iter()
        .zip(serial.matrix().data())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "post-kill Gram drifted");
    }

    haqjsk::dist::set_coordinator(None);
}
